#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace kernelgpt::util {

std::vector<std::string>
Split(std::string_view s, char sep)
{
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string>
SplitWhitespace(std::string_view s)
{
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view
Trim(std::string_view s)
{
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string
Join(const std::vector<std::string>& parts, std::string_view sep)
{
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool
StartsWith(std::string_view s, std::string_view prefix)
{
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
EndsWith(std::string_view s, std::string_view suffix)
{
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool
Contains(std::string_view haystack, std::string_view needle)
{
  return haystack.find(needle) != std::string_view::npos;
}

std::string
ToLower(std::string_view s)
{
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string
ReplaceAll(std::string_view s, std::string_view from, std::string_view to)
{
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string
Format(const char* fmt, ...)
{
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string
Indent(std::string_view s, int n)
{
  std::string pad(static_cast<size_t>(n > 0 ? n : 0), ' ');
  std::string out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? s.substr(start)
                                : s.substr(start, end - start);
    if (!line.empty()) out.append(pad);
    out.append(line);
    if (end == std::string_view::npos) break;
    out.push_back('\n');
    start = end + 1;
  }
  return out;
}

size_t
ApproxTokenCount(std::string_view s)
{
  size_t words = SplitWhitespace(s).size();
  // Blend word count with a character-based estimate; code-heavy text
  // tokenizes closer to 1 token / 3.5 chars.
  size_t by_chars = s.size() / 4;
  return words > by_chars ? words : by_chars;
}

}  // namespace kernelgpt::util
