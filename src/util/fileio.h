/// \file
/// Durable file I/O for the snapshot layer: crash-safe whole-file
/// replacement (write-tmp, fsync, rename) and synced appends, plus the
/// CRC32 checksum the journal uses to frame its records. A process killed
/// at any instant leaves either the old file or the new file on disk,
/// never a torn mixture — the invariant the Session persistence layer is
/// built on.

#ifndef KERNELGPT_UTIL_FILEIO_H_
#define KERNELGPT_UTIL_FILEIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace kernelgpt::util {

/// CRC32 (IEEE 802.3 polynomial, table-driven) over a byte range.
/// Deterministic across platforms; used to checksum journal records so a
/// torn or bit-flipped entry is detected instead of parsed.
uint32_t Crc32(const void* data, size_t len);
uint32_t Crc32(std::string_view s);

/// Atomically replaces `path` with `content`: writes `<path>.tmp`, flushes
/// and fsyncs it, then rename(2)s it into place and fsyncs the parent
/// directory. A crash at any point leaves either the previous file intact
/// or the new one complete — never a truncated or half-written file.
///
/// Test hook: when the KERNELGPT_CRASH_AFTER_TMP_WRITE environment
/// variable is set to a substring of `path`, the process _exit(42)s after
/// the tmp file is durable but before the rename — the crash window the
/// resumable_campaign example's kill-mid-save leg exercises.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// Appends `content` to `path` (creating it if missing) and fsyncs before
/// returning, so an acknowledged append survives a crash. Appends are not
/// atomic: a crash mid-write can leave a torn tail, which is why journal
/// records are length-prefixed and checksummed.
Status AppendFileDurable(const std::string& path, std::string_view content);

/// Reads the whole of `path` into `*out` (binary, no translation).
Status ReadFileToString(const std::string& path, std::string* out);

/// Maps a failing syscall to a Status whose message names the errno
/// class symbolically — "cannot append 'x': ENOSPC (No space left on
/// device)" — so recovery logs can distinguish a full disk from a dying
/// one from a permission problem. Every fileio call site reports through
/// this, as do injected errno faults (util/fault.h), so real and
/// simulated failures read identically.
Status ErrnoStatus(const char* verb, const std::string& path, int err);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_FILEIO_H_
