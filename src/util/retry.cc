#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace kernelgpt::util {

double
RetryPolicy::DelayMs(int retry, const std::string& key) const
{
  if (retry < 0) retry = 0;
  // 2^retry without pow(): stay exact and cheap for the small exponents
  // a bounded policy ever sees, saturating instead of overflowing.
  double delay = base_delay_ms;
  for (int i = 0; i < retry && delay < max_delay_ms; ++i) delay *= 2;
  delay = std::min(delay, max_delay_ms);
  if (jitter > 0) {
    uint64_t h = HashCombine(seed, StableHash(key));
    h = HashCombine(h, static_cast<uint64_t>(retry));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    delay *= 1.0 - jitter * unit;
  }
  return delay;
}

RetryResult
RunWithRetry(const RetryPolicy& policy, const std::string& key,
             const std::function<Status(int)>& attempt)
{
  RetryResult result;
  const int max_attempts = 1 + std::max(0, policy.max_retries);
  for (int i = 0; i < max_attempts; ++i) {
    ++result.attempts;
    result.status = attempt(i);
    if (result.status.ok() || i + 1 >= max_attempts) break;
    const double delay = policy.DelayMs(i, key);
    result.backoff_ms += delay;
    ++result.retries;
    if (policy.sleep && delay > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  return result;
}

}  // namespace kernelgpt::util
