#include "util/rng.h"

#include <algorithm>
#include <string>

namespace kernelgpt::util {

size_t
Rng::WeightedPick(const std::vector<double>& weights)
{
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = UnitDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng
Rng::Fork()
{
  return Rng(Next() ^ 0xda3e39cb94b95bdbULL);
}

uint64_t
StableHash(const void* data, size_t len)
{
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t
StableHash(const std::string& s)
{
  return StableHash(s.data(), s.size());
}

uint64_t
HashCombine(uint64_t a, uint64_t b)
{
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

}  // namespace kernelgpt::util
