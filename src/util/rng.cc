#include "util/rng.h"

#include <algorithm>
#include <string>

namespace kernelgpt::util {

uint64_t
Rng::Next()
{
  // SplitMix64 step.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t
Rng::Below(uint64_t bound)
{
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias for large bounds.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t
Rng::Range(int64_t lo, int64_t hi)
{
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Below(span));
}

bool
Rng::Chance(double p)
{
  p = std::clamp(p, 0.0, 1.0);
  return UnitDouble() < p;
}

double
Rng::UnitDouble()
{
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

size_t
Rng::WeightedPick(const std::vector<double>& weights)
{
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = UnitDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng
Rng::Fork()
{
  return Rng(Next() ^ 0xda3e39cb94b95bdbULL);
}

uint64_t
StableHash(const void* data, size_t len)
{
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t
StableHash(const std::string& s)
{
  return StableHash(s.data(), s.size());
}

uint64_t
HashCombine(uint64_t a, uint64_t b)
{
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

}  // namespace kernelgpt::util
