#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace kernelgpt::util {

namespace {
const char* const kSeparatorSentinel = "\x01--";
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::AddRow(std::vector<std::string> row)
{
  rows_.push_back(std::move(row));
}

void
Table::AddSeparator()
{
  rows_.push_back({kSeparatorSentinel});
}

size_t
Table::RowCount() const
{
  size_t n = 0;
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel)) ++n;
  }
  return n;
}

std::string
Table::Render() const
{
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.push_back(0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  size_t total = 0;
  for (size_t w : widths) total += w;
  total += widths.empty() ? 0 : 2 * (widths.size() - 1);
  std::string rule(total, '-');
  rule += '\n';

  std::string out = render_row(header_);
  out += rule;
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      out += rule;
    } else {
      out += render_row(row);
    }
  }
  return out;
}

std::string
Fixed(double v, int digits)
{
  return Format("%.*f", digits, v);
}

std::string
WithCommas(int64_t v)
{
  bool neg = v < 0;
  std::string digits = Format("%lld", static_cast<long long>(neg ? -v : v));
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace kernelgpt::util
