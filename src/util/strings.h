/// \file
/// Small string helpers shared by the lexers, printers, and reports.

#ifndef KERNELGPT_UTIL_STRINGS_H_
#define KERNELGPT_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace kernelgpt::util {

/// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Indents every line of `s` by `n` spaces.
std::string Indent(std::string_view s, int n);

/// Approximates an LLM tokenizer: counts whitespace/punctuation-delimited
/// chunks plus a per-character correction, mirroring the ~4 chars/token
/// rule of thumb. Used by the token meter.
size_t ApproxTokenCount(std::string_view s);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_STRINGS_H_
