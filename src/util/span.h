/// \file
/// Minimal contiguous-range view (C++17 has no std::span). Used by the
/// batched executor to accept programs from any contiguous container
/// without copying or templating the API.

#ifndef KERNELGPT_UTIL_SPAN_H_
#define KERNELGPT_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace kernelgpt::util {

/// Non-owning view over a contiguous sequence of T.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  /// Implicit from vector (a const vector requires const T).
  Span(std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_SPAN_H_
