/// \file
/// Deterministic pseudo-random number generation used across the project.
///
/// All randomized components (fuzzer, simulated LLM error injection,
/// workload selection) draw from this RNG so that every experiment is
/// reproducible from a single seed.

#ifndef KERNELGPT_UTIL_RNG_H_
#define KERNELGPT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kernelgpt::util {

/// SplitMix64-based pseudo-random generator.
///
/// SplitMix64 is small, fast, and passes BigCrush; it is well suited for
/// simulation workloads where reproducibility matters more than
/// cryptographic strength.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // The draw primitives are defined inline: they sit on the fuzzer's
  // hot path (millions of draws per second) where the out-of-line call
  // overhead was measurable.

  /// Returns the next raw 64-bit value.
  uint64_t Next() {
    // SplitMix64 step.
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniformly distributed value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias for large bounds.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniformly distributed value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Below(span));
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool Chance(double p) {
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    return UnitDouble() < p;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double UnitDouble() {
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Picks a random element index weighted by the given weights.
  /// Returns 0 if weights is empty or all-zero.
  size_t WeightedPick(const std::vector<double>& weights);

  /// Derives an independent child generator; useful to decorrelate
  /// subsystems that share a master seed.
  Rng Fork();

 private:
  uint64_t state_;
};

/// Stable 64-bit FNV-1a hash of a byte string. Used to derive deterministic
/// per-entity randomness (e.g. "does the simulated LLM err on this ioctl").
uint64_t StableHash(const void* data, size_t len);

/// Convenience overload for C++ strings.
uint64_t StableHash(const std::string& s);

/// Combines two hashes into one (boost::hash_combine style).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_RNG_H_
