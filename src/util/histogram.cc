#include "util/histogram.h"

#include <algorithm>

#include "util/strings.h"

namespace kernelgpt::util {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets ? buckets : 1, 0) {}

void
Histogram::Add(double value)
{
  double span = hi_ - lo_;
  size_t idx = 0;
  if (span > 0) {
    double rel = (value - lo_) / span;
    double scaled = rel * static_cast<double>(counts_.size());
    if (scaled < 0) scaled = 0;
    idx = static_cast<size_t>(scaled);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  counts_[idx]++;
  total_++;
}

uint64_t
Histogram::BucketCount(size_t i) const
{
  return i < counts_.size() ? counts_[i] : 0;
}

double
Histogram::BucketLow(size_t i) const
{
  double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double
Histogram::BucketHigh(size_t i) const
{
  double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i + 1);
}

std::string
Histogram::RenderAscii(int max_bar_width) const
{
  uint64_t max_count = 1;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(counts_[i] * static_cast<uint64_t>(max_bar_width) /
                               max_count);
    out += Format("[%6.1f,%6.1f) %6llu |", BucketLow(i), BucketHigh(i),
                  static_cast<unsigned long long>(counts_[i]));
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace kernelgpt::util
