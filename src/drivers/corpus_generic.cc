#include "drivers/corpus.h"

#include <cctype>

#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::drivers {

namespace {

using util::Format;

/// Field-name palette for generated structs, loosely mirroring common
/// kernel ABI field vocabulary.
const char* const kScalarNames[] = {
    "stride",  "offset", "value",  "index", "mode",   "size_hint",
    "channel", "mask",   "period", "id",    "serial", "threshold",
};

const char* const kArrayNames[] = {
    "data", "entries", "regs", "samples", "slots",
};

const char* const kStringNames[] = {
    "name", "label", "path", "ident",
};

std::string
UpperId(const std::string& id)
{
  std::string out;
  for (char c : id) {
    if (c == '-' || c == '#') {
      out.push_back('_');
    } else {
      out.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

DeviceSpec
MakeGenericDriver(const std::string& id, const std::string& display_name,
                  const std::string& dev_node, uint64_t magic,
                  RegistrationStyle reg, DispatchStyle dispatch,
                  int delegation_depth, int num_cmds,
                  double existing_fraction, uint64_t seed)
{
  util::Rng rng(util::HashCombine(util::StableHash(id), seed));
  DeviceSpec dev;
  dev.id = id;
  dev.display_name = display_name;
  dev.dev_node = dev_node;
  dev.magic = magic;
  dev.magic_macro = UpperId(id) + "_MAGIC";
  dev.reg = reg;
  dev.dispatch = dispatch;
  dev.delegation_depth = delegation_depth;
  dev.existing_fraction = existing_fraction;
  dev.primary.name = "ctl";

  const std::string prefix = UpperId(id);

  // One flag set shared by commands that carry a flags field.
  FlagSetSpec flag_set;
  flag_set.name = util::ToLower(id) + "_op_flags";
  for (int i = 0; i < 3; ++i) {
    flag_set.values.push_back(
        {Format("%s_F_%s", prefix.c_str(),
                i == 0 ? "SYNC" : (i == 1 ? "NONBLOCK" : "EXCL")),
         1ULL << i});
  }
  dev.flag_sets.push_back(flag_set);

  // A handful of distinct argument structs; commands cycle through them.
  int num_structs = static_cast<int>(rng.Range(2, 4));
  for (int si = 0; si < num_structs; ++si) {
    StructSpec s;
    s.name = Format("%s_arg%d", util::ToLower(id).c_str(), si);
    s.comment = Format("argument block %d of the %s interface", si,
                       display_name.c_str());
    int num_fields = static_cast<int>(rng.Range(3, 7));
    bool has_array = false;
    for (int fi = 0; fi < num_fields; ++fi) {
      uint64_t pick = rng.Below(10);
      if (pick < 4) {
        int bits = 8 << rng.Range(1, 3);  // 16/32/64
        s.fields.push_back(FieldSpec::Scalar(
            Format("%s%d", kScalarNames[rng.Below(12)], fi), bits));
      } else if (pick < 6 && !has_array) {
        // A counted array: len field + fixed array.
        std::string arr = Format("%s%d", kArrayNames[rng.Below(5)], fi);
        uint64_t len = 1ULL << rng.Range(3, 6);  // 8..32 elements
        s.fields.push_back(FieldSpec::LenOf(
            "n_" + arr, arr, 32, "number of valid elements in " + arr));
        s.fields.push_back(
            FieldSpec::Array(arr, 32, len, "payload elements"));
        has_array = true;
        ++fi;
      } else if (pick < 7) {
        s.fields.push_back(FieldSpec::Flags(
            Format("flags%d", fi), flag_set.name, 32, "operation flags"));
      } else if (pick < 8) {
        s.fields.push_back(FieldSpec::CString(
            Format("%s%d", kStringNames[rng.Below(4)], fi),
            8ULL << rng.Range(1, 3), "identifier string"));
      } else if (pick < 9) {
        s.fields.push_back(
            FieldSpec::Out(Format("out_token%d", fi), 32,
                           "kernel-assigned token (output)"));
      } else {
        s.fields.push_back(FieldSpec::Scalar(Format("reserved%d", fi), 32,
                                             "must be zero"));
      }
    }
    dev.structs.push_back(std::move(s));
  }

  // Commands cycling over the structs, with checks derived from fields.
  for (int ci = 0; ci < num_cmds; ++ci) {
    IoctlSpec cmd;
    cmd.macro = Format("%s_CMD%d", prefix.c_str(), ci);
    cmd.nr = static_cast<uint64_t>(ci + 1);
    const char dirs[] = {'b', 'w', 'r', 'n'};
    cmd.ioc_dir = dirs[rng.Below(ci == 0 ? 3 : 4)];
    if (cmd.ioc_dir != 'n') {
      const StructSpec& arg = dev.structs[static_cast<size_t>(ci) %
                                          dev.structs.size()];
      cmd.arg_struct = arg.name;
      cmd.dir = cmd.ioc_dir == 'r'
                    ? syzlang::Dir::kOut
                    : (cmd.ioc_dir == 'w' ? syzlang::Dir::kIn
                                          : syzlang::Dir::kInOut);
      // Derive 0-2 checks from the struct's fields (pure-output commands
      // take no input and validate nothing).
      for (const FieldSpec& f : arg.fields) {
        if (cmd.dir == syzlang::Dir::kOut) break;
        if (cmd.checks.size() >= 2) break;
        if (f.kind == FieldSpec::Kind::kScalar &&
            util::StartsWith(f.name, "reserved")) {
          cmd.checks.push_back(CheckSpec::Equals(f.name, 0));
        } else if (f.kind == FieldSpec::Kind::kLenOf) {
          cmd.checks.push_back(CheckSpec::LenBound(f.name));
        } else if (f.kind == FieldSpec::Kind::kScalar && rng.Chance(0.5)) {
          cmd.checks.push_back(
              CheckSpec::Range(f.name, 0, static_cast<int64_t>(
                                              rng.Range(15, 255))));
        }
      }
    }
    cmd.deep_blocks = static_cast<int>(rng.Range(2, 6));
    cmd.comment = Format("handle %s request %d for %s", display_name.c_str(),
                         ci, dev.dev_node.c_str());
    dev.primary.ioctls.push_back(std::move(cmd));
  }
  return dev;
}

}  // namespace kernelgpt::drivers
