/// \file
/// The synthetic kernel corpus: every device-driver and socket-family
/// model in the reproduction. This is the stand-in for the Linux 6.7
/// source tree the paper analyzes.
///
/// Hand-written models cover the drivers the paper discusses specifically
/// (device mapper, CEC, KVM, btrfs-control, UBI, DVB, UVC, the USB gadget
/// endpoint, posix-clock) including every Table 4 bug; a deterministic
/// generic builder produces the remaining Table 5 drivers with varied
/// registration/dispatch idioms.

#ifndef KERNELGPT_DRIVERS_CORPUS_H_
#define KERNELGPT_DRIVERS_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "drivers/driver_model.h"
#include "ksrc/definition_index.h"
#include "vkernel/model.h"

namespace kernelgpt::drivers {

/// Immutable registry of all models. Obtain via Corpus::Instance().
class Corpus {
 public:
  /// The singleton corpus (built once, deterministic).
  static const Corpus& Instance();

  const std::vector<DeviceSpec>& devices() const { return devices_; }
  const std::vector<SocketSpec>& sockets() const { return sockets_; }

  const DeviceSpec* FindDevice(const std::string& id) const;
  const SocketSpec* FindSocket(const std::string& id) const;

  /// Devices/sockets that are loaded under the syzbot config and not
  /// excluded — the generation targets of §5.1.
  std::vector<const DeviceSpec*> LoadedDevices() const;
  std::vector<const SocketSpec*> LoadedSockets() const;

  /// Parses every rendered source file into one definition index (the
  /// "kernel codebase" input of Figure 4).
  ksrc::DefinitionIndex BuildIndex() const;

  /// Registers runtime drivers for all loaded modules into a kernel.
  void RegisterAll(vkernel::KernelModel* kernel) const;

 private:
  Corpus();
  std::vector<DeviceSpec> devices_;
  std::vector<SocketSpec> sockets_;
};

/// Builds a filler driver with deterministic structs/commands derived from
/// `seed`. Used for Table 5 rows without paper-specific behaviour.
DeviceSpec MakeGenericDriver(const std::string& id,
                             const std::string& display_name,
                             const std::string& dev_node, uint64_t magic,
                             RegistrationStyle reg, DispatchStyle dispatch,
                             int delegation_depth, int num_cmds,
                             double existing_fraction, uint64_t seed);

// Hand-written models (one function per paper-relevant module).
DeviceSpec MakeDeviceMapper();
DeviceSpec MakeCec();
DeviceSpec MakeKvm();
DeviceSpec MakeBtrfsControl();
DeviceSpec MakeUbi();
DeviceSpec MakeDvb();
DeviceSpec MakeUvc();
DeviceSpec MakeVep();
DeviceSpec MakePtp();
DeviceSpec MakeLoopControl();
DeviceSpec MakeLoop0();
DeviceSpec MakeVhostNet();
DeviceSpec MakeVhostVsock();
DeviceSpec MakeSnapshot();

// Socket families (Table 6).
SocketSpec MakeRdsSocket();
SocketSpec MakeL2tpIp6Socket();
SocketSpec MakeLlcSocket();
SocketSpec MakeMptcpSocket();
SocketSpec MakePacketSocket();
SocketSpec MakePhonetSocket();
SocketSpec MakePppol2tpSocket();
SocketSpec MakeRfcommSocket();
SocketSpec MakeScoSocket();
SocketSpec MakeCaifSocket();

// Stateful vnet families (src/vnet/): declarative specs whose runtime is
// the in-process TCP/UDP stack rather than ModelSocketFamily.
SocketSpec MakeTcpSocket();
SocketSpec MakeUdpSocket();

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_CORPUS_H_
