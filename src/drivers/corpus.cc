#include "drivers/corpus.h"

#include "drivers/model_render.h"
#include "drivers/model_runtime.h"
#include "vnet/inet.h"

namespace kernelgpt::drivers {

namespace {

using R = RegistrationStyle;
using D = DispatchStyle;

/// Attaches a Table 4 bug to the last command of a generic driver.
void
AttachBug(DeviceSpec* dev, BugSpec bug)
{
  if (dev->primary.ioctls.empty()) return;
  // Attach to the last command so partial "existing" specs miss it.
  dev->primary.ioctls.back().bug = std::move(bug);
}

/// Attaches a long-known ("legacy") bug to the first command of a driver
/// whose existing Syzkaller spec covers it — these are the crashes the
/// Table 3 baselines keep rediscovering.
void
AttachLegacyBug(DeviceSpec* dev, std::string title,
                BugSpec::Trigger trigger = BugSpec::Trigger::kAlways)
{
  if (dev->primary.ioctls.empty()) return;
  BugSpec bug;
  bug.title = std::move(title);
  bug.confirmed = true;
  bug.fixed = false;
  bug.legacy = true;
  bug.trigger = trigger;
  IoctlSpec& first = dev->primary.ioctls.front();
  if (trigger == BugSpec::Trigger::kFieldZero ||
      trigger == BugSpec::Trigger::kFieldAtLeast) {
    // Pick the first plain scalar field of the arg struct as the trigger.
    for (const StructSpec& st : dev->structs) {
      if (st.name != first.arg_struct) continue;
      for (const FieldSpec& f : st.fields) {
        if (f.kind == FieldSpec::Kind::kScalar) {
          bug.field = f.name;
          break;
        }
      }
    }
    if (bug.field.empty()) bug.trigger = BugSpec::Trigger::kAlways;
    bug.value = 0x100000;
  }
  if (trigger == BugSpec::Trigger::kSequence) {
    bug.prior_cmd = dev->primary.ioctls.front().macro;
    // Fire on the second command instead, still within existing specs.
    if (dev->primary.ioctls.size() > 1) {
      dev->primary.ioctls[1].bug = std::move(bug);
      return;
    }
    bug.trigger = BugSpec::Trigger::kAlways;
  }
  first.bug = std::move(bug);
}

}  // namespace

Corpus::Corpus()
{
  // -- Hand-written paper modules -----------------------------------------
  devices_.push_back(MakeDeviceMapper());
  devices_.push_back(MakeCec());
  devices_.push_back(MakeKvm());
  devices_.push_back(MakeBtrfsControl());
  devices_.push_back(MakeUbi());
  devices_.push_back(MakeDvb());
  devices_.push_back(MakeUvc());
  devices_.push_back(MakeVep());
  devices_.push_back(MakePtp());
  devices_.push_back(MakeLoopControl());
  devices_.push_back(MakeLoop0());
  devices_.push_back(MakeVhostNet());
  devices_.push_back(MakeVhostVsock());
  devices_.push_back(MakeSnapshot());

  // -- Generic Table 5 drivers ---------------------------------------------
  devices_.push_back(MakeGenericDriver("capi20", "capi20", "/dev/capi20",
                                       0x43, R::kMiscName, D::kDirectSwitch,
                                       1, 13, 0.9, 1));
  devices_.push_back(MakeGenericDriver("controlc0", "controlC#",
                                       "/dev/controlC0", 0x55,
                                       R::kMiscNodename, D::kDirectSwitch, 2,
                                       14, 1.0, 2));
  devices_.push_back(MakeGenericDriver("fuse", "fuse", "/dev/fuse", 0xe5,
                                       R::kMiscName, D::kDirectSwitch, 1, 1,
                                       1.0, 3));
  devices_.push_back(MakeGenericDriver("hpet", "hpet", "/dev/hpet", 0x68,
                                       R::kMiscName, D::kDirectSwitch, 1, 6,
                                       0.15, 4));
  devices_.push_back(MakeGenericDriver("i2c0", "i2c-#", "/dev/i2c-0", 0x07,
                                       R::kDeviceCreate, D::kIocNrSwitch, 2,
                                       9, 1.0, 5));
  devices_.push_back(MakeGenericDriver("misdntimer", "mISDNtimer",
                                       "/dev/mISDNtimer", 0x49, R::kMiscName,
                                       D::kDirectSwitch, 1, 2, 1.0, 6));
  devices_.push_back(MakeGenericDriver("nbd0", "nbd#", "/dev/nbd0", 0xab,
                                       R::kDeviceCreate, D::kDirectSwitch, 2,
                                       11, 0.85, 7));
  devices_.push_back(MakeGenericDriver("nvram", "nvram", "/dev/nvram", 0x70,
                                       R::kMiscName, D::kDirectSwitch, 1, 5,
                                       0.2, 8));
  devices_.push_back(MakeGenericDriver("ppp", "ppp", "/dev/ppp", 0x74,
                                       R::kMiscName, D::kDirectSwitch, 2, 30,
                                       0.7, 9));
  devices_.push_back(MakeGenericDriver("ptmx", "ptmx", "/dev/ptmx", 0x54,
                                       R::kMiscName, D::kDirectSwitch, 1, 28,
                                       1.0, 10));
  devices_.push_back(MakeGenericDriver("qat_adf_ctl", "qat_adf_ctl",
                                       "/dev/qat_adf_ctl", 0xca,
                                       R::kMiscName, D::kTableLookup, 1, 5,
                                       1.0, 11));
  devices_.push_back(MakeGenericDriver("rfkill", "rfkill", "/dev/rfkill",
                                       0x52, R::kMiscName, D::kDirectSwitch,
                                       1, 3, 1.0, 12));
  devices_.push_back(MakeGenericDriver("rtc0", "rtc#", "/dev/rtc0", 0x70,
                                       R::kDeviceCreate, D::kDirectSwitch, 1,
                                       16, 0.8, 13));
  devices_.push_back(MakeGenericDriver("sg0", "sg#", "/dev/sg0", 0x22,
                                       R::kDeviceCreate, D::kDirectSwitch, 2,
                                       40, 0.95, 14));
  {
    DeviceSpec sr = MakeGenericDriver("sr0", "sr#", "/dev/sr0", 0x53,
                                      R::kDeviceCreate, D::kIocNrSwitch, 2,
                                      55, 0.02, 15);
    // Block-layer throttling hang, reachable only through the commands
    // Syzkaller's near-empty sr spec lacks (Table 4).
    BugSpec bug;
    bug.title = "INFO: task hung in __rq_qos_throttle";
    bug.confirmed = false;
    bug.fixed = false;
    bug.trigger = BugSpec::Trigger::kSequence;
    bug.prior_cmd = sr.primary.ioctls[1].macro;
    AttachBug(&sr, std::move(bug));
    devices_.push_back(std::move(sr));
  }
  devices_.push_back(MakeGenericDriver("timer", "timer", "/dev/snd/timer",
                                       0x54, R::kMiscNodename,
                                       D::kDirectSwitch, 2, 16, 1.0, 16));
  devices_.push_back(MakeGenericDriver("udmabuf", "udmabuf", "/dev/udmabuf",
                                       0x75, R::kMiscName, D::kDirectSwitch,
                                       1, 3, 1.0, 17));
  devices_.push_back(MakeGenericDriver("uinput", "uinput", "/dev/uinput",
                                       0x55, R::kMiscName, D::kDirectSwitch,
                                       1, 20, 1.0, 18));
  devices_.push_back(MakeGenericDriver("usbmon0", "usbmon#", "/dev/usbmon0",
                                       0x92, R::kDeviceCreate,
                                       D::kDirectSwitch, 2, 8, 1.0, 19));
  devices_.push_back(MakeGenericDriver("vmci", "vmci", "/dev/vmci", 0x07,
                                       R::kMiscName, D::kDirectSwitch, 1, 17,
                                       1.0, 20));
  devices_.push_back(MakeGenericDriver("vsock", "vsock", "/dev/vsock", 0x07,
                                       R::kMiscName, D::kDirectSwitch, 1, 2,
                                       0.5, 21));

  // -- Legacy bugs the existing Syzkaller specs already reach --------------
  struct LegacyPlan {
    const char* id;
    const char* title;
    BugSpec::Trigger trigger;
  };
  const LegacyPlan legacy_plan[] = {
      {"ptmx", "WARNING in ptmx_set_termios", BugSpec::Trigger::kFieldZero},
      {"uinput", "KASAN: slab-out-of-bounds in uinput_events",
       BugSpec::Trigger::kFieldAtLeast},
      {"ppp", "memory leak in ppp_register_channel",
       BugSpec::Trigger::kSequence},
      {"vmci", "WARNING in vmci_qp_broker_alloc",
       BugSpec::Trigger::kFieldZero},
      {"sg0", "KASAN: use-after-free in sg_remove_sfp",
       BugSpec::Trigger::kSequence},
      {"rtc0", "WARNING in rtc_set_alarm", BugSpec::Trigger::kFieldZero},
      {"capi20", "general protection fault in capi_unregister",
       BugSpec::Trigger::kSequence},
      {"usbmon0", "INFO: task hung in mon_bin_vma_close",
       BugSpec::Trigger::kFieldAtLeast},
      {"loop0", "WARNING in loop_set_status", BugSpec::Trigger::kFieldZero},
      {"timer", "KASAN: use-after-free in snd_timer_close",
       BugSpec::Trigger::kSequence},
      {"udmabuf", "BUG: corrupted list in udmabuf_release",
       BugSpec::Trigger::kAlways},
      {"controlc0", "WARNING in snd_ctl_elem_add",
       BugSpec::Trigger::kFieldAtLeast},
      {"rfkill", "memory leak in rfkill_register",
       BugSpec::Trigger::kAlways},
      {"i2c0", "WARNING in i2c_transfer_buffer",
       BugSpec::Trigger::kFieldZero},
      {"hpet", "divide error in hpet_interval", BugSpec::Trigger::kFieldZero},
      {"nbd0", "INFO: task hung in nbd_start_device",
       BugSpec::Trigger::kSequence},
  };
  for (const LegacyPlan& plan : legacy_plan) {
    for (auto& d : devices_) {
      if (d.id == plan.id) AttachLegacyBug(&d, plan.title, plan.trigger);
    }
  }

  // -- Fillers for the Table 1 landscape ------------------------------------
  {
    DeviceSpec d = MakeGenericDriver("gup_test", "gup_test", "/dev/gup_test",
                                     0x67, R::kMiscName, D::kDirectSwitch, 1,
                                     4, 0.0, 22);
    d.excluded = true;  // Debug driver (the paper's _test filter).
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("fpga_dbg", "fpga_dbg", "/dev/fpga_dbg",
                                     0xb8, R::kMiscName, D::kDirectSwitch, 1,
                                     6, 0.0, 23);
    d.excluded = true;  // Requires specific hardware.
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("mei0", "mei#", "/dev/mei0", 0x48,
                                     R::kDeviceCreate, D::kDirectSwitch, 2, 7,
                                     0.0, 24);
    d.loaded_in_syzbot = false;
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("tape0", "tape#", "/dev/tape0", 0x6d,
                                     R::kDeviceCreate, D::kTableLookup, 1, 9,
                                     0.0, 25);
    d.loaded_in_syzbot = false;
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("xdma0", "xdma#", "/dev/xdma0", 0xba,
                                     R::kDeviceCreate, D::kDirectSwitch, 3, 8,
                                     0.0, 26);
    d.loaded_in_syzbot = false;
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("watchdog0", "watchdog#",
                                     "/dev/watchdog0", 0x57, R::kDeviceCreate,
                                     D::kDirectSwitch, 1, 7, 0.6, 27);
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("mbox0", "mbox#", "/dev/mbox0", 0x6d,
                                     R::kDeviceCreate, D::kIocNrSwitch, 2, 6,
                                     0.0, 28);
    devices_.push_back(std::move(d));
  }
  {
    DeviceSpec d = MakeGenericDriver("fsverity", "fsverity", "/dev/fsverity",
                                     0x76, R::kMiscName, D::kDirectSwitch, 1,
                                     5, 0.3, 29);
    devices_.push_back(std::move(d));
  }

  // -- Undescribed drivers with idioms outside SyzDescribe's rule set ------
  struct HardFiller {
    const char* id;
    const char* display;
    const char* node;
    uint64_t magic;
    R reg;
    D dispatch;
    int depth;
    int cmds;
    uint64_t seed;
  };
  const HardFiller hard_fillers[] = {
      {"adi0", "adi#", "/dev/adi0", 0xa1, R::kDeviceCreate, D::kTableLookup, 1, 7, 30},
      {"bfin", "bfin", "/dev/bfin/ctl", 0xa2, R::kMiscNodename, D::kDirectSwitch, 1, 5, 31},
      {"cxl_mem0", "cxl_mem#", "/dev/cxl_mem0", 0xa3, R::kDeviceCreate, D::kDirectSwitch, 4, 8, 32},
      {"dax0", "dax#", "/dev/dax0", 0xa4, R::kDeviceCreate, D::kIocNrSwitch, 2, 6, 33},
      {"edac", "edac", "/dev/edac", 0xa5, R::kMiscName, D::kTableLookup, 1, 9, 34},
      {"fsl_mc", "fsl-mc", "/dev/fsl/mc", 0xa6, R::kMiscNodename, D::kIocNrSwitch, 2, 7, 35},
      {"gnss0", "gnss#", "/dev/gnss0", 0xa7, R::kDeviceCreate, D::kIocNrSwitch, 3, 5, 36},
      {"hsi0", "hsi#", "/dev/hsi0", 0xa8, R::kDeviceCreate, D::kTableLookup, 1, 8, 37},
      {"ipmi0", "ipmi#", "/dev/ipmi/0", 0xa9, R::kMiscNodename, D::kDirectSwitch, 1, 10, 38},
      {"jsm0", "jsm#", "/dev/jsm0", 0xaa, R::kDeviceCreate, D::kIocNrSwitch, 2, 6, 39},
      {"kfd", "kfd", "/dev/kfd", 0xb1, R::kMiscName, D::kTableLookup, 2, 12, 40},
      {"lirc0", "lirc#", "/dev/lirc/0", 0xb2, R::kMiscNodename, D::kIocNrSwitch, 2, 7, 41},
      {"mtdchar0", "mtd#", "/dev/mtd0", 0xb3, R::kDeviceCreate, D::kTableLookup, 1, 11, 42},
      {"nilfs", "nilfs-ctl", "/dev/nilfs/ctl", 0xb4, R::kMiscNodename, D::kTableLookup, 1, 6, 43},
  };
  for (const HardFiller& f : hard_fillers) {
    devices_.push_back(MakeGenericDriver(f.id, f.display, f.node, f.magic,
                                         f.reg, f.dispatch, f.depth, f.cmds,
                                         0.0, f.seed));
  }

  // -- Socket families -------------------------------------------------------
  sockets_.push_back(MakeCaifSocket());
  sockets_.push_back(MakeL2tpIp6Socket());
  sockets_.push_back(MakeLlcSocket());
  sockets_.push_back(MakeMptcpSocket());
  sockets_.push_back(MakePacketSocket());
  sockets_.push_back(MakePhonetSocket());
  sockets_.push_back(MakePppol2tpSocket());
  sockets_.push_back(MakeRdsSocket());
  sockets_.push_back(MakeRfcommSocket());
  sockets_.push_back(MakeScoSocket());
  sockets_.push_back(MakeTcpSocket());
  sockets_.push_back(MakeUdpSocket());
}

const Corpus&
Corpus::Instance()
{
  static const Corpus corpus;
  return corpus;
}

const DeviceSpec*
Corpus::FindDevice(const std::string& id) const
{
  for (const auto& d : devices_) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

const SocketSpec*
Corpus::FindSocket(const std::string& id) const
{
  for (const auto& s : sockets_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const DeviceSpec*>
Corpus::LoadedDevices() const
{
  std::vector<const DeviceSpec*> out;
  for (const auto& d : devices_) {
    if (d.loaded_in_syzbot && !d.excluded) out.push_back(&d);
  }
  return out;
}

std::vector<const SocketSpec*>
Corpus::LoadedSockets() const
{
  std::vector<const SocketSpec*> out;
  for (const auto& s : sockets_) {
    if (s.loaded_in_syzbot && !s.excluded) out.push_back(&s);
  }
  return out;
}

ksrc::DefinitionIndex
Corpus::BuildIndex() const
{
  ksrc::DefinitionIndex index;
  for (const auto& d : devices_) {
    index.AddSource(RenderDeviceSource(d), "drivers/" + d.id + ".c");
  }
  for (const auto& s : sockets_) {
    index.AddSource(RenderSocketSource(s), "net/" + s.id + ".c");
  }
  index.ResolveMacros();
  return index;
}

void
Corpus::RegisterAll(vkernel::KernelModel* kernel) const
{
  for (const auto& d : devices_) {
    if (d.loaded_in_syzbot && !d.excluded) {
      kernel->RegisterDevice(MakeModelDevice(&d));
    }
  }
  for (const auto& s : sockets_) {
    if (!s.loaded_in_syzbot || s.excluded) continue;
    if (s.vnet) {
      // Stateful vnet families; semantics follow the model's policy.
      vnet::VnetPolicy policy = vnet::VnetPolicy::FromModel(kernel);
      if (s.id == "tcp") {
        kernel->RegisterSocketFamily(vnet::MakeTcpFamily(&s, policy));
      } else {
        kernel->RegisterSocketFamily(vnet::MakeUdpFamily(&s, policy));
      }
      continue;
    }
    kernel->RegisterSocketFamily(MakeModelSocketFamily(&s));
  }
}

}  // namespace kernelgpt::drivers
