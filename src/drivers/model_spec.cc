#include "drivers/model_spec.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace kernelgpt::drivers {

using syzlang::Decl;
using syzlang::DeclKind;
using syzlang::Dir;
using syzlang::Field;
using syzlang::FlagsDef;
using syzlang::ResourceDef;
using syzlang::SpecFile;
using syzlang::StructDef;
using syzlang::SyscallDef;
using syzlang::Type;

namespace {

/// Most restrictive check seen for each (struct, field) across all
/// commands — used to enrich scalar types with semantic ranges, as an
/// expert writer would.
using CheckMap =
    std::unordered_map<std::string,
                       std::unordered_map<std::string, CheckSpec>>;

void
CollectChecks(const std::vector<IoctlSpec>& cmds, CheckMap* map)
{
  for (const auto& cmd : cmds) {
    if (cmd.arg_struct.empty()) continue;
    for (const auto& check : cmd.checks) {
      auto& slot = (*map)[cmd.arg_struct];
      slot.emplace(check.field, check);
    }
  }
}

int64_t
DefaultMax(int bits)
{
  if (bits >= 63) return (1LL << 62);
  return (1LL << bits) - 1;
}

Type
ScalarWithSemantics(const FieldSpec& f, const CheckSpec* check)
{
  if (check) {
    switch (check->kind) {
      case CheckSpec::Kind::kRange:
        return Type::IntRange(f.bits, check->min, check->max);
      case CheckSpec::Kind::kEquals:
        return Type::ConstValue(check->value, f.bits);
      case CheckSpec::Kind::kNonZero:
        return Type::IntRange(f.bits, 1, DefaultMax(f.bits));
      case CheckSpec::Kind::kLenBound:
        break;  // len[] already expresses the relation.
    }
  }
  return Type::Int(f.bits);
}

Field
FieldToSyzlang(const FieldSpec& f, const CheckSpec* check)
{
  Field out;
  out.name = f.name;
  switch (f.kind) {
    case FieldSpec::Kind::kScalar:
      out.type = ScalarWithSemantics(f, check);
      break;
    case FieldSpec::Kind::kArray:
      out.type = f.array_len == 0 ? Type::Array(Type::Int(f.bits))
                                  : Type::Array(Type::Int(f.bits), f.array_len);
      break;
    case FieldSpec::Kind::kString:
      out.type = Type::Array(Type::Int(8), f.array_len);
      break;
    case FieldSpec::Kind::kStructRef:
      out.type = Type::StructRef(f.struct_ref);
      break;
    case FieldSpec::Kind::kLenOf:
      out.type = Type::Len(f.len_of, f.bits);
      break;
    case FieldSpec::Kind::kFlags:
      out.type = Type::Flags(f.flags_ref, f.bits);
      break;
    case FieldSpec::Kind::kOutValue:
      out.type = Type::Int(f.bits);
      out.is_out = true;
      break;
  }
  return out;
}

void
AddStructs(const std::vector<StructSpec>& structs, const CheckMap& checks,
           SpecFile* spec)
{
  for (const auto& s : structs) {
    StructDef def;
    def.name = s.name;
    def.is_union = s.is_union;
    const auto check_it = checks.find(s.name);
    for (const auto& f : s.fields) {
      const CheckSpec* check = nullptr;
      if (check_it != checks.end()) {
        auto field_it = check_it->second.find(f.name);
        if (field_it != check_it->second.end()) check = &field_it->second;
      }
      def.fields.push_back(FieldToSyzlang(f, check));
    }
    spec->Add(std::move(def));
  }
}

void
AddFlagSets(const std::vector<FlagSetSpec>& sets, SpecFile* spec)
{
  for (const auto& fs : sets) {
    FlagsDef def;
    def.name = fs.name;
    for (const auto& [name, value] : fs.values) def.values.push_back(name);
    spec->Add(std::move(def));
  }
}

SyscallDef
MakeIoctl(const std::string& fd_resource, const IoctlSpec& cmd,
          const std::string& ret_resource)
{
  SyscallDef call;
  call.name = "ioctl";
  call.variant = cmd.macro;
  call.params.push_back({"fd", Type::Resource(fd_resource), false});
  call.params.push_back({"cmd", Type::Const(cmd.macro), false});
  if (cmd.arg_struct.empty()) {
    call.params.push_back({"arg", Type::ConstValue(0, 64), false});
  } else {
    call.params.push_back(
        {"arg", Type::Ptr(cmd.dir, Type::StructRef(cmd.arg_struct)), false});
  }
  if (!ret_resource.empty()) call.returns_resource = ret_resource;
  return call;
}

/// Keeps only `selected` syscalls plus every declaration they reference
/// (transitively): structs, unions, flags, resources.
SpecFile
FilterSpec(const SpecFile& full,
           const std::unordered_set<std::string>& selected)
{
  // Gather reachable type names from the selected calls.
  std::unordered_set<std::string> needed;
  std::vector<const Type*> work;
  auto visit_type = [&](const Type& t, auto&& self) -> void {
    switch (t.kind) {
      case syzlang::TypeKind::kResource:
        needed.insert(t.ref_name);
        break;
      case syzlang::TypeKind::kStructRef:
        if (needed.insert(t.ref_name).second) {
          if (const StructDef* s = full.FindStruct(t.ref_name)) {
            for (const Field& f : s->fields) self(f.type, self);
          }
        }
        break;
      case syzlang::TypeKind::kFlags:
        needed.insert(t.flags_name);
        break;
      case syzlang::TypeKind::kPtr:
      case syzlang::TypeKind::kArray:
        for (const Type& e : t.elems) self(e, self);
        break;
      default:
        break;
    }
  };
  for (const Decl& d : full.decls) {
    if (d.kind != DeclKind::kSyscall) continue;
    if (!selected.count(d.syscall.FullName())) continue;
    for (const Field& p : d.syscall.params) visit_type(p.type, visit_type);
    if (d.syscall.returns_resource) needed.insert(*d.syscall.returns_resource);
  }
  (void)work;

  SpecFile out;
  out.origin = full.origin + " (existing subset)";
  for (const Decl& d : full.decls) {
    switch (d.kind) {
      case DeclKind::kSyscall:
        if (selected.count(d.syscall.FullName())) out.decls.push_back(d);
        break;
      case DeclKind::kStruct:
        if (needed.count(d.struct_def.name)) out.decls.push_back(d);
        break;
      case DeclKind::kResource:
        if (needed.count(d.resource.name)) out.decls.push_back(d);
        break;
      case DeclKind::kFlags:
        if (needed.count(d.flags.name)) out.decls.push_back(d);
        break;
      case DeclKind::kDefine:
        out.decls.push_back(d);
        break;
    }
  }
  return out;
}

}  // namespace

std::string
DeviceResourceName(const DeviceSpec& dev)
{
  return "fd_" + dev.id;
}

std::string
HandlerResourceName(const DeviceSpec& dev, const HandlerSpec& handler)
{
  return "fd_" + dev.id + "_" + handler.name;
}

std::string
SocketResourceName(const SocketSpec& sock)
{
  return "sock_" + sock.id;
}

syzlang::SpecFile
GroundTruthDeviceSpec(const DeviceSpec& dev)
{
  SpecFile spec;
  spec.origin = "ground-truth:" + dev.id;

  CheckMap checks;
  CollectChecks(dev.primary.ioctls, &checks);
  for (const auto& h : dev.secondary) CollectChecks(h.ioctls, &checks);

  spec.Add(ResourceDef{DeviceResourceName(dev), "fd"});
  for (const auto& h : dev.secondary) {
    spec.Add(ResourceDef{HandlerResourceName(dev, h), "fd"});
  }

  AddFlagSets(dev.flag_sets, &spec);
  AddStructs(dev.structs, checks, &spec);

  SyscallDef open;
  open.name = "openat";
  open.variant = dev.id;
  open.params.push_back({"fd", Type::ConstValue(0, 64), false});
  open.params.push_back(
      {"file", Type::Ptr(Dir::kIn, Type::String(dev.dev_node)), false});
  open.params.push_back({"flags", Type::ConstValue(2, 32), false});
  open.params.push_back({"mode", Type::ConstValue(0, 32), false});
  open.returns_resource = DeviceResourceName(dev);
  spec.Add(std::move(open));

  for (const auto& cmd : dev.primary.ioctls) {
    std::string ret;
    if (!cmd.creates_handler.empty()) {
      if (const HandlerSpec* sub = dev.FindHandler(cmd.creates_handler)) {
        ret = HandlerResourceName(dev, *sub);
      }
    }
    spec.Add(MakeIoctl(DeviceResourceName(dev), cmd, ret));
  }
  for (const auto& h : dev.secondary) {
    for (const auto& cmd : h.ioctls) {
      std::string ret;
      if (!cmd.creates_handler.empty()) {
        if (const HandlerSpec* sub = dev.FindHandler(cmd.creates_handler)) {
          ret = HandlerResourceName(dev, *sub);
        }
      }
      spec.Add(MakeIoctl(HandlerResourceName(dev, h), cmd, ret));
    }
  }
  return spec;
}

syzlang::SpecFile
GroundTruthSocketSpec(const SocketSpec& sock)
{
  SpecFile spec;
  spec.origin = "ground-truth:" + sock.id;
  const std::string res = SocketResourceName(sock);

  spec.Add(ResourceDef{res, "fd"});
  CheckMap checks;
  CollectChecks(sock.ioctls, &checks);
  for (const auto& opt : sock.sockopts) {
    if (opt.arg_struct.empty()) continue;
    for (const auto& check : opt.checks) {
      checks[opt.arg_struct].emplace(check.field, check);
    }
  }
  // Address-struct checks from data-path ops.
  for (const SocketOpSpec* op :
       {&sock.bind, &sock.connect, &sock.sendto}) {
    if (!op->supported || sock.addr_struct.empty()) continue;
    for (const auto& check : op->checks) {
      checks[sock.addr_struct].emplace(check.field, check);
    }
  }
  AddFlagSets(sock.flag_sets, &spec);
  AddStructs(sock.structs, checks, &spec);

  SyscallDef create;
  create.name = "socket";
  create.variant = sock.id;
  create.params.push_back(
      {"domain", Type::Const(sock.family_macro), false});
  create.params.push_back(
      {"type", sock.sock_type != 0 ? Type::Const(sock.sock_type_macro)
                                   : Type::ConstValue(2, 32),
       false});
  create.params.push_back(
      {"proto", Type::ConstValue(sock.protocol, 32), false});
  create.returns_resource = res;
  spec.Add(std::move(create));

  for (const auto& opt : sock.sockopts) {
    Type payload = opt.arg_struct.empty()
                       ? Type::Int(32)
                       : Type::StructRef(opt.arg_struct);
    if (opt.settable) {
      SyscallDef call;
      call.name = "setsockopt";
      call.variant = sock.id + "_" + opt.macro;
      call.params.push_back({"fd", Type::Resource(res), false});
      call.params.push_back({"level", Type::Const(sock.sol_macro), false});
      call.params.push_back({"optname", Type::Const(opt.macro), false});
      call.params.push_back(
          {"optval", Type::Ptr(Dir::kIn, payload), false});
      call.params.push_back({"optlen", Type::Len("optval", 32), false});
      spec.Add(std::move(call));
    }
    if (opt.gettable) {
      SyscallDef call;
      call.name = "getsockopt";
      call.variant = sock.id + "_" + opt.macro;
      call.params.push_back({"fd", Type::Resource(res), false});
      call.params.push_back({"level", Type::Const(sock.sol_macro), false});
      call.params.push_back({"optname", Type::Const(opt.macro), false});
      call.params.push_back(
          {"optval", Type::Ptr(Dir::kOut, payload), false});
      call.params.push_back({"optlen", Type::Len("optval", 32), false});
      spec.Add(std::move(call));
    }
  }

  for (const auto& cmd : sock.ioctls) {
    spec.Add(MakeIoctl(res, cmd, ""));
  }

  auto addr_ptr = [&](Dir dir) {
    return sock.addr_struct.empty()
               ? Type::Ptr(dir, Type::Array(Type::Int(8), 16))
               : Type::Ptr(dir, Type::StructRef(sock.addr_struct));
  };
  if (sock.bind.supported) {
    SyscallDef call;
    call.name = "bind";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back({"addr", addr_ptr(Dir::kIn), false});
    call.params.push_back({"addrlen", Type::Len("addr", 32), false});
    spec.Add(std::move(call));
  }
  if (sock.connect.supported) {
    SyscallDef call;
    call.name = "connect";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back({"addr", addr_ptr(Dir::kIn), false});
    call.params.push_back({"addrlen", Type::Len("addr", 32), false});
    spec.Add(std::move(call));
  }
  if (sock.sendto.supported) {
    SyscallDef call;
    call.name = "sendto";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back(
        {"buf", Type::Ptr(Dir::kIn, Type::Array(Type::Int(8))), false});
    call.params.push_back({"len", Type::Len("buf", 64), false});
    call.params.push_back({"flags", Type::ConstValue(0, 32), false});
    call.params.push_back({"addr", addr_ptr(Dir::kIn), false});
    call.params.push_back({"addrlen", Type::Len("addr", 32), false});
    spec.Add(std::move(call));
  }
  if (sock.recvfrom.supported) {
    SyscallDef call;
    call.name = "recvfrom";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back(
        {"buf", Type::Ptr(Dir::kOut, Type::Array(Type::Int(8))), false});
    call.params.push_back({"len", Type::Len("buf", 64), false});
    spec.Add(std::move(call));
  }
  if (sock.listen.supported) {
    SyscallDef call;
    call.name = "listen";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back({"backlog", Type::ConstValue(0, 32), false});
    spec.Add(std::move(call));
  }
  if (sock.accept.supported) {
    SyscallDef call;
    call.name = "accept";
    call.variant = sock.id;
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back({"peer", Type::ConstValue(0, 64), false});
    call.params.push_back({"peerlen", Type::ConstValue(0, 64), false});
    call.returns_resource = res;
    spec.Add(std::move(call));
  }
  return spec;
}

size_t
GroundTruthSyscallCount(const DeviceSpec& dev)
{
  return GroundTruthDeviceSpec(dev).Syscalls().size();
}

size_t
GroundTruthSyscallCount(const SocketSpec& sock)
{
  return GroundTruthSocketSpec(sock).Syscalls().size();
}

syzlang::SpecFile
ExistingDeviceSpec(const DeviceSpec& dev)
{
  SpecFile full = GroundTruthDeviceSpec(dev);
  if (dev.existing_fraction <= 0.0) {
    SpecFile empty;
    empty.origin = "existing:" + dev.id + " (none)";
    return empty;
  }
  std::vector<const SyscallDef*> calls = full.Syscalls();
  std::unordered_set<std::string> selected;
  // openat always included; then the first fraction of the ioctls in
  // declaration order (humans describe the common commands first).
  size_t ioctl_total = calls.size() > 0 ? calls.size() - 1 : 0;
  size_t keep = static_cast<size_t>(
      std::ceil(dev.existing_fraction * static_cast<double>(ioctl_total)));
  size_t taken = 0;
  for (const SyscallDef* c : calls) {
    if (c->name == "openat") {
      selected.insert(c->FullName());
      continue;
    }
    if (taken < keep) {
      selected.insert(c->FullName());
      ++taken;
    }
  }
  SpecFile out = FilterSpec(full, selected);
  out.origin = "existing:" + dev.id;
  return out;
}

syzlang::SpecFile
ExistingSocketSpec(const SocketSpec& sock)
{
  SpecFile full = GroundTruthSocketSpec(sock);
  if (sock.existing_fraction <= 0.0) {
    SpecFile empty;
    empty.origin = "existing:" + sock.id + " (none)";
    return empty;
  }
  std::vector<const SyscallDef*> calls = full.Syscalls();
  std::unordered_set<std::string> selected;
  size_t total = calls.size() > 0 ? calls.size() - 1 : 0;
  size_t keep = static_cast<size_t>(
      std::ceil(sock.existing_fraction * static_cast<double>(total)));
  size_t taken = 0;
  for (const SyscallDef* c : calls) {
    if (c->name == "socket") {
      selected.insert(c->FullName());
      continue;
    }
    if (taken < keep) {
      selected.insert(c->FullName());
      ++taken;
    }
  }
  SpecFile out = FilterSpec(full, selected);
  out.origin = "existing:" + sock.id;
  return out;
}

}  // namespace kernelgpt::drivers
