#include "drivers/model_runtime.h"

#include <unordered_set>

#include "ksrc/cparser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::drivers {

using vkernel::Buffer;
using vkernel::ExecContext;
using vkernel::FileHandler;
using vkernel::Kernel;

uint64_t
BlockId(const std::string& module, const std::string& role,
        const std::string& detail, uint32_t index)
{
  uint64_t h = util::StableHash(module);
  h = util::HashCombine(h, util::StableHash(role));
  h = util::HashCombine(h, util::StableHash(detail));
  h = util::HashCombine(h, index);
  return h;
}

size_t
MaxBlocksOf(const DeviceSpec& dev)
{
  size_t n = 1;  // open
  auto count_handler = [&](const HandlerSpec& h) {
    for (const auto& cmd : h.ioctls) {
      n += 1;                  // dispatch hit
      n += cmd.checks.size();  // one per passed check
      n += static_cast<size_t>(cmd.deep_blocks);
    }
  };
  count_handler(dev.primary);
  for (const auto& h : dev.secondary) count_handler(h);
  return n;
}

namespace {

/// Reads one top-level field of `layout` out of a user buffer.
uint64_t
ReadField(const Buffer& buf, const StructLayout& layout,
          const std::string& field)
{
  const FieldLayout* fl = layout.Find(field);
  if (!fl) return 0;
  size_t scalar = fl->size > 8 ? 8 : fl->size;
  return buf.ReadScalar(fl->offset, scalar);
}

/// Evaluates a validation check against the user buffer.
bool
CheckPasses(const CheckSpec& check, const Buffer& buf,
            const StructLayout& layout, const StructSpec* arg)
{
  uint64_t raw = ReadField(buf, layout, check.field);
  switch (check.kind) {
    case CheckSpec::Kind::kRange: {
      int64_t v = static_cast<int64_t>(raw);
      return v >= check.min && v <= check.max;
    }
    case CheckSpec::Kind::kEquals:
      return raw == check.value;
    case CheckSpec::Kind::kNonZero:
      return raw != 0;
    case CheckSpec::Kind::kLenBound: {
      uint64_t capacity = 4096;
      if (arg) {
        const FieldSpec* len_field = arg->FindField(check.field);
        if (len_field) {
          const FieldSpec* target = arg->FindField(len_field->len_of);
          if (target && target->array_len > 0) capacity = target->array_len;
        }
      }
      return raw <= capacity;
    }
  }
  return false;
}

/// Shared per-command execution used by device files and sockets.
/// Returns the syscall result; fills `created_fd_handler` when the
/// command creates a secondary file.
class CommandEngine {
 public:
  CommandEngine(const std::string& module,
                const std::vector<StructSpec>& structs)
      : module_(module), structs_(structs) {}

  /// Runs checks, bug triggers, deep path, and out-field writes for one
  /// matched command. `executed` is the set of command macros already run
  /// on this file (sequence-bug state). Returns 0 or negative errno.
  long RunCommand(const IoctlSpec& cmd, Buffer* arg, ExecContext& ctx,
                  std::unordered_set<std::string>* executed,
                  bool* release_bomb, std::string* release_title) {
    const StructSpec* arg_spec = FindStruct(cmd.arg_struct);
    StructLayout layout;
    if (arg_spec) layout = ComputeLayout(*arg_spec, structs_);

    ctx.Cover(BlockId(module_, "cmd", cmd.macro, 0));

    if (arg_spec) {
      // copy_from_user fails when the user buffer is too small.
      if (!arg || arg->bytes.size() < layout.total_size) {
        return -vkernel::kEFAULT;
      }
      uint32_t idx = 1;
      for (const CheckSpec& check : cmd.checks) {
        if (!CheckPasses(check, *arg, layout, arg_spec)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(BlockId(module_, "check", cmd.macro, idx++));
      }
    }

    // Bug triggers evaluated at the top of the deep path, like the
    // rendered source places them.
    if (cmd.bug) {
      const BugSpec& bug = *cmd.bug;
      bool fire = false;
      switch (bug.trigger) {
        case BugSpec::Trigger::kFieldAtLeast:
          fire = arg_spec && arg &&
                 ReadField(*arg, layout, bug.field) >= bug.value;
          break;
        case BugSpec::Trigger::kFieldEquals:
          fire = arg_spec && arg &&
                 ReadField(*arg, layout, bug.field) == bug.value;
          break;
        case BugSpec::Trigger::kFieldZero:
          fire = arg_spec && arg &&
                 ReadField(*arg, layout, bug.field) == 0;
          break;
        case BugSpec::Trigger::kSequence:
          fire = executed && executed->count(bug.prior_cmd);
          break;
        case BugSpec::Trigger::kOnRelease:
          if (release_bomb) {
            *release_bomb = true;
            *release_title = bug.title;
          }
          break;
        case BugSpec::Trigger::kAlways:
          fire = true;
          break;
      }
      if (fire) ctx.Crash(bug.title);
    }

    for (int i = 0; i < cmd.deep_blocks; ++i) {
      ctx.Cover(BlockId(module_, "deep", cmd.macro,
                        static_cast<uint32_t>(i)));
    }

    // Kernel-written output fields.
    if (arg_spec && arg) {
      for (const FieldLayout& fl : layout.fields) {
        if (fl.field->kind == FieldSpec::Kind::kOutValue) {
          arg->WriteScalar(fl.offset, fl.size > 8 ? 8 : fl.size,
                           0x1000 + next_out_++);
        }
      }
    }
    if (executed) executed->insert(cmd.macro);
    return 0;
  }

 private:
  const StructSpec* FindStruct(const std::string& name) const {
    if (name.empty()) return nullptr;
    for (const auto& s : structs_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  const std::string& module_;
  const std::vector<StructSpec>& structs_;
  uint64_t next_out_ = 0;
};

// ---------------------------------------------------------------------------
// Device side
// ---------------------------------------------------------------------------

class ModelFile : public FileHandler {
 public:
  ModelFile(const DeviceSpec* dev, const HandlerSpec* handler)
      : dev_(dev), handler_(handler), engine_(dev->id, dev->structs) {}

  long Ioctl(uint64_t cmd_value, Buffer* arg, ExecContext& ctx,
             Kernel& kernel) override {
    const IoctlSpec* match = MatchCommand(cmd_value);
    if (!match) return -vkernel::kENOTTY;

    if (dev_->dispatch == DispatchStyle::kIocNrSwitch) {
      // The rendered dispatcher validates the size bits of the full
      // command; a bare nr value (SyzDescribe's wrong inference) fails.
      uint64_t expect = StructByteSize(match->arg_struct, dev_->structs);
      if (!match->arg_struct.empty() &&
          ksrc::IocSize(cmd_value) < expect) {
        return -vkernel::kEINVAL;
      }
    }

    if (!match->creates_handler.empty()) {
      long rc = engine_.RunCommand(*match, arg, ctx, &executed_,
                                   &release_bomb_, &release_title_);
      if (rc != 0) return rc;
      const HandlerSpec* sub = dev_->FindHandler(match->creates_handler);
      if (!sub) return -vkernel::kEINVAL;
      return kernel.InstallFile(std::make_shared<ModelFile>(dev_, sub));
    }
    return engine_.RunCommand(*match, arg, ctx, &executed_, &release_bomb_,
                              &release_title_);
  }

  void Release(ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    if (release_bomb_) ctx.Crash(release_title_);
  }

 private:
  const IoctlSpec* MatchCommand(uint64_t cmd_value) const {
    for (const auto& cmd : handler_->ioctls) {
      switch (dev_->dispatch) {
        case DispatchStyle::kDirectSwitch:
        case DispatchStyle::kTableLookup:
          if (FullCommandValue(*dev_, cmd) == cmd_value) return &cmd;
          break;
        case DispatchStyle::kIocNrSwitch:
          if (ksrc::IocNr(cmd_value) == cmd.nr) return &cmd;
          break;
      }
    }
    return nullptr;
  }

  const DeviceSpec* dev_;
  const HandlerSpec* handler_;
  CommandEngine engine_;
  std::unordered_set<std::string> executed_;
  bool release_bomb_ = false;
  std::string release_title_;
};

class ModelDevice : public vkernel::DeviceDriver {
 public:
  explicit ModelDevice(const DeviceSpec* dev) : dev_(dev) {}

  std::string Name() const override { return dev_->id; }
  std::string NodePath() const override { return dev_->dev_node; }

  std::unique_ptr<FileHandler> Open(ExecContext& ctx, Kernel& kernel,
                                    long* err) override {
    (void)kernel;
    (void)err;
    ctx.Cover(BlockId(dev_->id, "open", "", 0));
    return std::make_unique<ModelFile>(dev_, &dev_->primary);
  }

 private:
  const DeviceSpec* dev_;
};

// ---------------------------------------------------------------------------
// Socket side
// ---------------------------------------------------------------------------

class ModelSocket : public vkernel::SocketHandler {
 public:
  explicit ModelSocket(const SocketSpec* sock)
      : sock_(sock), engine_(sock->id, sock->structs) {}

  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    if (level != sock_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const auto& opt : sock_->sockopts) {
      if (!opt.settable || opt.value != optname) continue;
      IoctlSpec pseudo = PseudoCommand(opt, /*set=*/true);
      Buffer copy = val;
      return engine_.RunCommand(pseudo, &copy, ctx, &executed_,
                                &release_bomb_, &release_title_);
    }
    return -vkernel::kENOPROTOOPT;
  }

  long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                  ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    if (level != sock_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const auto& opt : sock_->sockopts) {
      if (!opt.gettable || opt.value != optname) continue;
      IoctlSpec pseudo = PseudoCommand(opt, /*set=*/false);
      // get path: kernel fills the buffer; size it to the struct.
      size_t need = StructByteSize(opt.arg_struct, sock_->structs);
      if (val && val->bytes.size() < need) val->bytes.resize(need, 0);
      return engine_.RunCommand(pseudo, val, ctx, &executed_, &release_bomb_,
                                &release_title_);
    }
    return -vkernel::kENOPROTOOPT;
  }

  long Ioctl(uint64_t cmd_value, Buffer* arg, ExecContext& ctx,
             Kernel& kernel) override {
    (void)kernel;
    for (const auto& cmd : sock_->ioctls) {
      uint64_t full = SocketCommandValue(cmd);
      if (full == cmd_value) {
        return engine_.RunCommand(cmd, arg, ctx, &executed_, &release_bomb_,
                                  &release_title_);
      }
    }
    return -vkernel::kENOTTY;
  }

  long Bind(const Buffer& addr, ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    return RunOp("bind", sock_->bind, addr, ctx);
  }

  long Connect(const Buffer& addr, ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    return RunOp("connect", sock_->connect, addr, ctx);
  }

  long SendTo(const Buffer& data, const Buffer& addr, ExecContext& ctx,
              Kernel& kernel) override {
    (void)kernel;
    (void)data;
    return RunOp("sendto", sock_->sendto, addr, ctx);
  }

  long RecvFrom(Buffer* data, ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    if (data) data->bytes.resize(64, 0);
    Buffer empty;
    return RunOp("recvfrom", sock_->recvfrom, empty, ctx);
  }

  long Listen(ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    Buffer empty;
    return RunOp("listen", sock_->listen, empty, ctx);
  }

  long Accept(ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    Buffer empty;
    return RunOp("accept", sock_->accept, empty, ctx);
  }

  void Release(ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    if (release_bomb_) ctx.Crash(release_title_);
  }

 private:
  IoctlSpec PseudoCommand(const SockOptSpec& opt, bool set) const {
    IoctlSpec pseudo;
    pseudo.macro = (set ? "SET_" : "GET_") + opt.macro;
    pseudo.arg_struct = opt.arg_struct;
    pseudo.checks = set ? opt.checks : std::vector<CheckSpec>{};
    pseudo.deep_blocks = opt.deep_blocks;
    pseudo.bug = set ? opt.bug : std::nullopt;
    return pseudo;
  }

  uint64_t SocketCommandValue(const IoctlSpec& cmd) const {
    uint64_t size = StructByteSize(cmd.arg_struct, sock_->structs);
    char r = (cmd.ioc_dir == 'r' || cmd.ioc_dir == 'b') ? 'r' : '-';
    char w = (cmd.ioc_dir == 'w' || cmd.ioc_dir == 'b') ? 'w' : '-';
    if (cmd.ioc_dir == 'n') size = 0;
    return ksrc::IoctlNumber(r, w, 0x89, cmd.nr, size);  // SIOC family.
  }

  long RunOp(const char* op, const SocketOpSpec& spec, const Buffer& addr,
             ExecContext& ctx) {
    if (!spec.supported) return -vkernel::kEOPNOTSUPP;
    ctx.Cover(BlockId(sock_->id, "op", op, 0));
    const StructSpec* addr_spec = sock_->addr_struct.empty()
                                      ? nullptr
                                      : sock_->FindStruct(sock_->addr_struct);
    StructLayout layout;
    if (addr_spec) layout = ComputeLayout(*addr_spec, sock_->structs);
    if (addr_spec && !spec.checks.empty()) {
      if (addr.bytes.size() < layout.total_size) return -vkernel::kEFAULT;
      uint32_t idx = 1;
      for (const CheckSpec& check : spec.checks) {
        if (!CheckPasses(check, addr, layout, addr_spec)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(BlockId(sock_->id, std::string("op-check-") + op,
                          check.field, idx++));
      }
    }
    if (spec.bug) {
      const BugSpec& bug = *spec.bug;
      bool fire = false;
      switch (bug.trigger) {
        case BugSpec::Trigger::kFieldAtLeast:
          fire = addr_spec && ReadField(addr, layout, bug.field) >= bug.value;
          break;
        case BugSpec::Trigger::kFieldZero:
          fire = addr_spec && ReadField(addr, layout, bug.field) == 0;
          break;
        case BugSpec::Trigger::kFieldEquals:
          fire = addr_spec && ReadField(addr, layout, bug.field) == bug.value;
          break;
        case BugSpec::Trigger::kSequence:
          fire = executed_.count(bug.prior_cmd);
          break;
        case BugSpec::Trigger::kOnRelease:
          release_bomb_ = true;
          release_title_ = bug.title;
          break;
        case BugSpec::Trigger::kAlways:
          fire = true;
          break;
      }
      if (fire) ctx.Crash(bug.title);
    }
    for (int i = 0; i < spec.deep_blocks; ++i) {
      ctx.Cover(BlockId(sock_->id, std::string("op-deep-") + op, "",
                        static_cast<uint32_t>(i)));
    }
    executed_.insert(op);
    return 0;
  }

  const SocketSpec* sock_;
  CommandEngine engine_;
  std::unordered_set<std::string> executed_;
  bool release_bomb_ = false;
  std::string release_title_;
};

class ModelSocketFamily : public vkernel::SocketFamily {
 public:
  explicit ModelSocketFamily(const SocketSpec* sock) : sock_(sock) {}

  std::string Name() const override { return sock_->id; }
  uint64_t Domain() const override { return sock_->domain; }

  std::unique_ptr<vkernel::SocketHandler> Create(uint64_t type,
                                                 uint64_t protocol,
                                                 ExecContext& ctx,
                                                 Kernel& kernel,
                                                 long* err) override {
    (void)kernel;
    if (sock_->sock_type != 0 && type != sock_->sock_type) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    if (sock_->protocol != 0 && protocol != sock_->protocol) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    ctx.Cover(BlockId(sock_->id, "create", "", 0));
    return std::make_unique<ModelSocket>(sock_);
  }

 private:
  const SocketSpec* sock_;
};

}  // namespace

std::unique_ptr<vkernel::DeviceDriver>
MakeModelDevice(const DeviceSpec* dev)
{
  return std::make_unique<ModelDevice>(dev);
}

std::unique_ptr<vkernel::SocketFamily>
MakeModelSocketFamily(const SocketSpec* sock)
{
  return std::make_unique<ModelSocketFamily>(sock);
}

}  // namespace kernelgpt::drivers
