#include "drivers/model_runtime.h"

#include "ksrc/cparser.h"
#include "util/rng.h"
#include "vkernel/coverage.h"

namespace kernelgpt::drivers {

using vkernel::Buffer;
using vkernel::ExecContext;
using vkernel::FileHandler;
using vkernel::KernelModel;

uint64_t
BlockId(const std::string& module, const std::string& role,
        const std::string& detail, uint32_t index)
{
  uint64_t h = util::StableHash(module);
  h = util::HashCombine(h, util::StableHash(role));
  h = util::HashCombine(h, util::StableHash(detail));
  h = util::HashCombine(h, index);
  return h;
}

namespace {

/// Canonical tuple key for BlockLayout's slot map. \x1f never occurs in
/// spec identifiers, so the encoding is collision-free.
std::string
TupleKey(const std::string& role, const std::string& detail, uint32_t index)
{
  std::string key;
  key.reserve(role.size() + detail.size() + 12);
  key += role;
  key += '\x1f';
  key += detail;
  key += '\x1f';
  key += std::to_string(index);
  return key;
}

}  // namespace

BlockLayout::BlockLayout(const std::string& module)
    : module_(module), base_(util::StableHash(module))
{
}

void
BlockLayout::Assign(const std::string& role, const std::string& detail,
                    uint32_t index)
{
  auto [it, inserted] = slots_.emplace(TupleKey(role, detail, index), next_);
  (void)it;
  if (inserted) ++next_;
}

uint64_t
BlockLayout::IdOf(const std::string& role, const std::string& detail,
                  uint32_t index) const
{
  auto it = slots_.find(TupleKey(role, detail, index));
  if (it == slots_.end()) return BlockId(module_, role, detail, index);
  return vkernel::MakeBlockId(base_, it->second);
}

BlockLayout
BlockLayout::ForDevice(const DeviceSpec& dev)
{
  BlockLayout layout(dev.id);
  layout.Assign("open", "", 0);
  auto walk_handler = [&layout](const HandlerSpec& h) {
    for (const auto& cmd : h.ioctls) {
      layout.Assign("cmd", cmd.macro, 0);
      for (uint32_t i = 1; i <= cmd.checks.size(); ++i) {
        layout.Assign("check", cmd.macro, i);
      }
      for (int i = 0; i < cmd.deep_blocks; ++i) {
        layout.Assign("deep", cmd.macro, static_cast<uint32_t>(i));
      }
    }
  };
  walk_handler(dev.primary);
  for (const auto& h : dev.secondary) walk_handler(h);
  return layout;
}

BlockLayout
BlockLayout::ForSocket(const SocketSpec& sock)
{
  BlockLayout layout(sock.id);
  layout.Assign("create", "", 0);
  auto walk_cmd = [&layout](const std::string& macro, size_t checks,
                            int deep) {
    layout.Assign("cmd", macro, 0);
    for (uint32_t i = 1; i <= checks; ++i) layout.Assign("check", macro, i);
    for (int i = 0; i < deep; ++i) {
      layout.Assign("deep", macro, static_cast<uint32_t>(i));
    }
  };
  for (const auto& cmd : sock.ioctls) {
    walk_cmd(cmd.macro, cmd.checks.size(), cmd.deep_blocks);
  }
  // Mirrors SocketRuntime's PseudoCommand expansion: the set pseudo
  // carries the option's checks, the get pseudo none.
  for (const auto& opt : sock.sockopts) {
    walk_cmd("SET_" + opt.macro, opt.checks.size(), opt.deep_blocks);
    walk_cmd("GET_" + opt.macro, 0, opt.deep_blocks);
  }
  auto walk_op = [&layout](const char* op, const SocketOpSpec& spec) {
    layout.Assign("op", op, 0);
    uint32_t idx = 1;
    for (const CheckSpec& check : spec.checks) {
      layout.Assign(std::string("op-check-") + op, check.field, idx++);
    }
    for (int i = 0; i < spec.deep_blocks; ++i) {
      layout.Assign(std::string("op-deep-") + op, "",
                    static_cast<uint32_t>(i));
    }
  };
  walk_op("bind", sock.bind);
  walk_op("connect", sock.connect);
  walk_op("sendto", sock.sendto);
  walk_op("recvfrom", sock.recvfrom);
  walk_op("listen", sock.listen);
  walk_op("accept", sock.accept);
  return layout;
}

size_t
MaxBlocksOf(const DeviceSpec& dev)
{
  return BlockLayout::ForDevice(dev).BlockCount();
}

namespace {

/// Reads one top-level field of `layout` out of a user buffer.
uint64_t
ReadField(const Buffer& buf, const StructLayout& layout,
          const std::string& field)
{
  const FieldLayout* fl = layout.Find(field);
  if (!fl) return 0;
  size_t scalar = fl->size > 8 ? 8 : fl->size;
  return buf.ReadScalar(fl->offset, scalar);
}

/// Evaluates a validation check against the user buffer.
bool
CheckPasses(const CheckSpec& check, const Buffer& buf,
            const StructLayout& layout, const StructSpec* arg)
{
  uint64_t raw = ReadField(buf, layout, check.field);
  switch (check.kind) {
    case CheckSpec::Kind::kRange: {
      int64_t v = static_cast<int64_t>(raw);
      return v >= check.min && v <= check.max;
    }
    case CheckSpec::Kind::kEquals:
      return raw == check.value;
    case CheckSpec::Kind::kNonZero:
      return raw != 0;
    case CheckSpec::Kind::kLenBound: {
      uint64_t capacity = 4096;
      if (arg) {
        const FieldSpec* len_field = arg->FindField(check.field);
        if (len_field) {
          const FieldSpec* target = arg->FindField(len_field->len_of);
          if (target && target->array_len > 0) capacity = target->array_len;
        }
      }
      return raw <= capacity;
    }
  }
  return false;
}

const StructSpec*
FindStructIn(const std::vector<StructSpec>& structs, const std::string& name)
{
  if (name.empty()) return nullptr;
  for (const auto& s : structs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Small-index bit set replacing the per-file unordered_set<string> that
/// used to track executed command macros (sequence-bug state). Macros get
/// dense indices at module-table build time; the hot path tests and sets
/// bits, never hashing a string.
class ExecutedSet {
 public:
  bool Test(int idx) const {
    if (idx < 0) return false;
    const size_t i = static_cast<size_t>(idx);
    if (i < 64) return (lo_ & (1ULL << i)) != 0;
    const size_t w = i / 64 - 1;
    return w < hi_.size() && (hi_[w] & (1ULL << (i % 64))) != 0;
  }

  void Set(int idx) {
    if (idx < 0) return;
    const size_t i = static_cast<size_t>(idx);
    if (i < 64) {
      lo_ |= 1ULL << i;
      return;
    }
    const size_t w = i / 64 - 1;
    if (w >= hi_.size()) hi_.resize(w + 1, 0);
    hi_[w] |= 1ULL << (i % 64);
  }

 private:
  uint64_t lo_ = 0;
  std::vector<uint64_t> hi_;  ///< Overflow words for >64 macros (rare).
};

/// Dense per-module macro numbering (commands, sockopt pseudo-commands,
/// socket op names, and sequence-bug priors all share one namespace, as
/// the old string set did).
class MacroIndex {
 public:
  int Add(const std::string& name) {
    auto [it, inserted] = map_.emplace(name, static_cast<int>(map_.size()));
    (void)inserted;
    return it->second;
  }

 private:
  std::unordered_map<std::string, int> map_;
};

/// Everything one command needs at dispatch time, computed once per
/// module instead of per call: the resolved arg struct and its layout,
/// the precomputed match/validation values, and the coverage block ids
/// (the old code re-hashed module/role/detail strings on every hit).
struct CmdRuntime {
  const IoctlSpec* cmd = nullptr;
  const StructSpec* arg_spec = nullptr;
  StructLayout layout;
  std::vector<size_t> out_fields;  ///< Indices of kOutValue layout fields.
  uint64_t match_value = 0;        ///< Full ioctl command value.
  uint64_t expect_size = 0;        ///< Arg struct size (_IOC size check).
  uint64_t cmd_block = 0;
  std::vector<uint64_t> check_blocks;
  std::vector<uint64_t> deep_block_ids;
  int macro_idx = -1;
  int bug_prior_idx = -1;
};

void
FillCmdRuntime(CmdRuntime* rt, const BlockLayout& blocks,
               const IoctlSpec& cmd, const std::vector<StructSpec>& structs,
               MacroIndex* macros)
{
  rt->cmd = &cmd;
  rt->arg_spec = FindStructIn(structs, cmd.arg_struct);
  if (rt->arg_spec) {
    rt->layout = ComputeLayout(*rt->arg_spec, structs);
    for (size_t i = 0; i < rt->layout.fields.size(); ++i) {
      if (rt->layout.fields[i].field->kind == FieldSpec::Kind::kOutValue) {
        rt->out_fields.push_back(i);
      }
    }
  }
  rt->expect_size = StructByteSize(cmd.arg_struct, structs);
  rt->cmd_block = blocks.IdOf("cmd", cmd.macro, 0);
  for (uint32_t idx = 1; idx <= cmd.checks.size(); ++idx) {
    rt->check_blocks.push_back(blocks.IdOf("check", cmd.macro, idx));
  }
  for (int i = 0; i < cmd.deep_blocks; ++i) {
    rt->deep_block_ids.push_back(
        blocks.IdOf("deep", cmd.macro, static_cast<uint32_t>(i)));
  }
  rt->macro_idx = macros->Add(cmd.macro);
  if (cmd.bug && cmd.bug->trigger == BugSpec::Trigger::kSequence) {
    rt->bug_prior_idx = macros->Add(cmd.bug->prior_cmd);
  }
}

/// Free-list of pooled per-open handler objects. The fuzzing hot path
/// opens and closes device files millions of times; pooling reuses both
/// the handler object (its strings/vectors keep their capacity) and its
/// shared_ptr control block, so a steady-state open costs zero
/// allocations. Each DeviceRuntime/SocketRuntime owns one pool; the
/// vkernel returns handlers through the HandlerRecycler hook when their
/// last descriptor drops. Kernels are single-threaded, so no locking.
class HandlerPool : public vkernel::HandlerRecycler {
 public:
  void Recycle(std::shared_ptr<FileHandler> handler) override {
    free_.push_back(std::move(handler));
  }

  /// Pops a pooled handler; nullptr when the pool is empty. The caller
  /// must fully re-initialize it before reissuing.
  std::shared_ptr<FileHandler> Take() {
    if (free_.empty()) return nullptr;
    std::shared_ptr<FileHandler> handler = std::move(free_.back());
    free_.pop_back();
    return handler;
  }

 private:
  std::vector<std::shared_ptr<FileHandler>> free_;
};

/// Shared per-command execution used by device files and sockets.
/// Returns the syscall result; fills `created_fd_handler` when the
/// command creates a secondary file.
class CommandEngine {
 public:
  CommandEngine() = default;

  /// Runs checks, bug triggers, deep path, and out-field writes for one
  /// matched command. `executed` carries the macros already run on this
  /// file (sequence-bug state). Returns 0 or negative errno.
  long RunCommand(const CmdRuntime& rt, Buffer* arg, ExecContext& ctx,
                  ExecutedSet* executed, bool* release_bomb,
                  std::string* release_title) {
    const IoctlSpec& cmd = *rt.cmd;
    ctx.Cover(rt.cmd_block);

    if (rt.arg_spec) {
      // copy_from_user fails when the user buffer is too small.
      if (!arg || arg->size() < rt.layout.total_size) {
        return -vkernel::kEFAULT;
      }
      for (size_t k = 0; k < cmd.checks.size(); ++k) {
        if (!CheckPasses(cmd.checks[k], *arg, rt.layout, rt.arg_spec)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(rt.check_blocks[k]);
      }
    }

    // Bug triggers evaluated at the top of the deep path, like the
    // rendered source places them.
    if (cmd.bug) {
      const BugSpec& bug = *cmd.bug;
      bool fire = false;
      switch (bug.trigger) {
        case BugSpec::Trigger::kFieldAtLeast:
          fire = rt.arg_spec && arg &&
                 ReadField(*arg, rt.layout, bug.field) >= bug.value;
          break;
        case BugSpec::Trigger::kFieldEquals:
          fire = rt.arg_spec && arg &&
                 ReadField(*arg, rt.layout, bug.field) == bug.value;
          break;
        case BugSpec::Trigger::kFieldZero:
          fire = rt.arg_spec && arg &&
                 ReadField(*arg, rt.layout, bug.field) == 0;
          break;
        case BugSpec::Trigger::kSequence:
          fire = executed && executed->Test(rt.bug_prior_idx);
          break;
        case BugSpec::Trigger::kOnRelease:
          if (release_bomb) {
            *release_bomb = true;
            *release_title = bug.title;
          }
          break;
        case BugSpec::Trigger::kAlways:
          fire = true;
          break;
      }
      if (fire) ctx.Crash(bug.title);
    }

    for (uint64_t block : rt.deep_block_ids) ctx.Cover(block);

    // Kernel-written output fields.
    if (rt.arg_spec && arg) {
      for (size_t fi : rt.out_fields) {
        const FieldLayout& fl = rt.layout.fields[fi];
        arg->WriteScalar(fl.offset, fl.size > 8 ? 8 : fl.size,
                         0x1000 + next_out_++);
      }
    }
    if (executed) executed->Set(rt.macro_idx);
    return 0;
  }

 private:
  uint64_t next_out_ = 0;
};

// ---------------------------------------------------------------------------
// Device side
// ---------------------------------------------------------------------------

/// Per-device precomputed tables, built once per ModelDevice (i.e. once
/// per kernel boot) and shared by every file the device opens.
struct DeviceRuntime {
  const DeviceSpec* dev;
  BlockLayout blocks;  ///< Dense per-module block ids (spec order).
  uint64_t open_block;
  MacroIndex macros;
  std::unordered_map<const HandlerSpec*, std::vector<CmdRuntime>> handlers;
  /// Recycled ModelFile objects (primary and secondary handlers share
  /// it; Reset rebinds the command table). Mutable: acquisition happens
  /// through the const DeviceRuntime* the files hold.
  mutable HandlerPool pool;

  explicit DeviceRuntime(const DeviceSpec* d)
      : dev(d),
        blocks(BlockLayout::ForDevice(*d)),
        open_block(blocks.IdOf("open", "", 0)) {
    BuildHandler(&d->primary);
    for (const auto& h : d->secondary) BuildHandler(&h);
  }

  void BuildHandler(const HandlerSpec* h) {
    std::vector<CmdRuntime>& cmds = handlers[h];
    cmds.resize(h->ioctls.size());
    for (size_t i = 0; i < h->ioctls.size(); ++i) {
      FillCmdRuntime(&cmds[i], blocks, h->ioctls[i], dev->structs, &macros);
      cmds[i].match_value = FullCommandValue(*dev, h->ioctls[i]);
    }
  }

  const std::vector<CmdRuntime>* CmdsOf(const HandlerSpec* h) const {
    auto it = handlers.find(h);
    return it == handlers.end() ? nullptr : &it->second;
  }
};

std::shared_ptr<FileHandler> AcquireModelFile(const DeviceRuntime* rt,
                                              const HandlerSpec* handler);

class ModelFile : public FileHandler {
 public:
  ModelFile(const DeviceRuntime* rt, const HandlerSpec* handler)
      : rt_(rt), cmds_(rt->CmdsOf(handler)) {}

  /// Restores freshly-opened state on a pooled object (same observable
  /// behaviour as constructing a new ModelFile for `handler`).
  void Reset(const HandlerSpec* handler) {
    cmds_ = rt_->CmdsOf(handler);
    engine_ = CommandEngine();
    executed_ = ExecutedSet();
    release_bomb_ = false;
    release_title_.clear();
  }

  long Ioctl(uint64_t cmd_value, Buffer* arg, KernelModel& kernel) override {
    ExecContext& ctx = kernel.context();
    const CmdRuntime* match = MatchCommand(cmd_value);
    if (!match) return -vkernel::kENOTTY;

    if (rt_->dev->dispatch == DispatchStyle::kIocNrSwitch) {
      // The rendered dispatcher validates the size bits of the full
      // command; a bare nr value (SyzDescribe's wrong inference) fails.
      if (!match->cmd->arg_struct.empty() &&
          ksrc::IocSize(cmd_value) < match->expect_size) {
        return -vkernel::kEINVAL;
      }
    }

    if (!match->cmd->creates_handler.empty()) {
      long rc = engine_.RunCommand(*match, arg, ctx, &executed_,
                                   &release_bomb_, &release_title_);
      if (rc != 0) return rc;
      const HandlerSpec* sub =
          rt_->dev->FindHandler(match->cmd->creates_handler);
      if (!sub) return -vkernel::kEINVAL;
      return kernel.InstallFile(AcquireModelFile(rt_, sub));
    }
    return engine_.RunCommand(*match, arg, ctx, &executed_, &release_bomb_,
                              &release_title_);
  }

  void Release(KernelModel& kernel) override {
    if (release_bomb_) kernel.context().Crash(release_title_);
  }

 private:
  const CmdRuntime* MatchCommand(uint64_t cmd_value) const {
    if (!cmds_) return nullptr;
    for (const CmdRuntime& rt : *cmds_) {
      switch (rt_->dev->dispatch) {
        case DispatchStyle::kDirectSwitch:
        case DispatchStyle::kTableLookup:
          if (rt.match_value == cmd_value) return &rt;
          break;
        case DispatchStyle::kIocNrSwitch:
          if (ksrc::IocNr(cmd_value) == rt.cmd->nr) return &rt;
          break;
      }
    }
    return nullptr;
  }

  const DeviceRuntime* rt_;
  const std::vector<CmdRuntime>* cmds_;
  CommandEngine engine_;
  ExecutedSet executed_;
  bool release_bomb_ = false;
  std::string release_title_;
};

/// Pool-aware ModelFile construction: reuses a recycled object when one
/// is available, otherwise allocates and tags it with the pool.
std::shared_ptr<FileHandler>
AcquireModelFile(const DeviceRuntime* rt, const HandlerSpec* handler)
{
  if (std::shared_ptr<FileHandler> pooled = rt->pool.Take()) {
    static_cast<ModelFile*>(pooled.get())->Reset(handler);
    return pooled;
  }
  std::shared_ptr<ModelFile> file = std::make_shared<ModelFile>(rt, handler);
  file->set_recycler(&rt->pool);
  return file;
}

class ModelDevice : public vkernel::DeviceDriver {
 public:
  explicit ModelDevice(const DeviceSpec* dev) : dev_(dev), runtime_(dev) {}

  std::string Name() const override { return dev_->id; }
  std::string NodePath() const override { return dev_->dev_node; }

  std::shared_ptr<FileHandler> Open(KernelModel& kernel,
                                    long* err) override {
    (void)err;
    kernel.context().Cover(runtime_.open_block);
    return AcquireModelFile(&runtime_, &dev_->primary);
  }

 private:
  const DeviceSpec* dev_;
  DeviceRuntime runtime_;
};

// ---------------------------------------------------------------------------
// Socket side
// ---------------------------------------------------------------------------

/// One setsockopt/getsockopt option with its precomputed pseudo-commands
/// (the old code rebuilt the pseudo IoctlSpec — string concatenation and
/// vector copies included — on every call).
struct SockOptRuntime {
  const SockOptSpec* opt = nullptr;
  IoctlSpec set_pseudo;
  IoctlSpec get_pseudo;
  CmdRuntime set_rt;
  CmdRuntime get_rt;
  size_t get_need = 0;  ///< Kernel-filled buffer size for the get path.
};

/// One socket-level operation (bind/connect/...) with precomputed blocks.
struct OpRuntime {
  const SocketOpSpec* spec = nullptr;
  uint64_t op_block = 0;
  std::vector<uint64_t> check_blocks;
  std::vector<uint64_t> deep_block_ids;
  int macro_idx = -1;
  int bug_prior_idx = -1;
};

/// Per-family precomputed tables, shared by every socket it creates.
struct SocketRuntime {
  const SocketSpec* sock;
  BlockLayout blocks;  ///< Dense per-module block ids (spec order).
  uint64_t create_block;
  MacroIndex macros;
  std::vector<CmdRuntime> ioctls;
  std::vector<SockOptRuntime> sockopts;
  const StructSpec* addr_spec = nullptr;
  StructLayout addr_layout;
  OpRuntime bind, connect, sendto, recvfrom, listen, accept;
  /// Recycled ModelSocket objects (see DeviceRuntime::pool).
  mutable HandlerPool pool;

  explicit SocketRuntime(const SocketSpec* s)
      : sock(s),
        blocks(BlockLayout::ForSocket(*s)),
        create_block(blocks.IdOf("create", "", 0)) {
    ioctls.resize(s->ioctls.size());
    for (size_t i = 0; i < s->ioctls.size(); ++i) {
      FillCmdRuntime(&ioctls[i], blocks, s->ioctls[i], s->structs, &macros);
      ioctls[i].match_value = SocketCommandValue(s->ioctls[i]);
    }

    // resize() up front: CmdRuntime::cmd points at the sibling pseudo
    // spec, so elements must never relocate after FillCmdRuntime.
    sockopts.resize(s->sockopts.size());
    for (size_t i = 0; i < s->sockopts.size(); ++i) {
      SockOptRuntime& so = sockopts[i];
      so.opt = &s->sockopts[i];
      so.set_pseudo = PseudoCommand(*so.opt, /*set=*/true);
      so.get_pseudo = PseudoCommand(*so.opt, /*set=*/false);
      FillCmdRuntime(&so.set_rt, blocks, so.set_pseudo, s->structs, &macros);
      FillCmdRuntime(&so.get_rt, blocks, so.get_pseudo, s->structs, &macros);
      so.get_need = StructByteSize(so.opt->arg_struct, s->structs);
    }

    if (!s->addr_struct.empty()) {
      addr_spec = FindStructIn(s->structs, s->addr_struct);
      if (addr_spec) addr_layout = ComputeLayout(*addr_spec, s->structs);
    }

    BuildOp(&bind, "bind", s->bind);
    BuildOp(&connect, "connect", s->connect);
    BuildOp(&sendto, "sendto", s->sendto);
    BuildOp(&recvfrom, "recvfrom", s->recvfrom);
    BuildOp(&listen, "listen", s->listen);
    BuildOp(&accept, "accept", s->accept);
  }

  void BuildOp(OpRuntime* rt, const char* op, const SocketOpSpec& spec) {
    rt->spec = &spec;
    rt->op_block = blocks.IdOf("op", op, 0);
    uint32_t idx = 1;
    for (const CheckSpec& check : spec.checks) {
      rt->check_blocks.push_back(blocks.IdOf(
          std::string("op-check-") + op, check.field, idx++));
    }
    for (int i = 0; i < spec.deep_blocks; ++i) {
      rt->deep_block_ids.push_back(blocks.IdOf(
          std::string("op-deep-") + op, "", static_cast<uint32_t>(i)));
    }
    rt->macro_idx = macros.Add(op);
    if (spec.bug && spec.bug->trigger == BugSpec::Trigger::kSequence) {
      rt->bug_prior_idx = macros.Add(spec.bug->prior_cmd);
    }
  }

  IoctlSpec PseudoCommand(const SockOptSpec& opt, bool set) const {
    IoctlSpec pseudo;
    pseudo.macro = (set ? "SET_" : "GET_") + opt.macro;
    pseudo.arg_struct = opt.arg_struct;
    pseudo.checks = set ? opt.checks : std::vector<CheckSpec>{};
    pseudo.deep_blocks = opt.deep_blocks;
    pseudo.bug = set ? opt.bug : std::nullopt;
    return pseudo;
  }

  uint64_t SocketCommandValue(const IoctlSpec& cmd) const {
    uint64_t size = StructByteSize(cmd.arg_struct, sock->structs);
    char r = (cmd.ioc_dir == 'r' || cmd.ioc_dir == 'b') ? 'r' : '-';
    char w = (cmd.ioc_dir == 'w' || cmd.ioc_dir == 'b') ? 'w' : '-';
    if (cmd.ioc_dir == 'n') size = 0;
    return ksrc::IoctlNumber(r, w, 0x89, cmd.nr, size);  // SIOC family.
  }
};

class ModelSocket : public vkernel::SocketHandler {
 public:
  explicit ModelSocket(const SocketRuntime* rt) : rt_(rt) {}

  /// Restores freshly-created state on a pooled object.
  void Reset() {
    engine_ = CommandEngine();
    executed_ = ExecutedSet();
    release_bomb_ = false;
    release_title_.clear();
  }

  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  KernelModel& kernel) override {
    ExecContext& ctx = kernel.context();
    if (level != rt_->sock->sol_level) return -vkernel::kENOPROTOOPT;
    for (const SockOptRuntime& so : rt_->sockopts) {
      if (!so.opt->settable || so.opt->value != optname) continue;
      Buffer copy = val;  // Views copy cheaply; writes materialize.
      return engine_.RunCommand(so.set_rt, &copy, ctx, &executed_,
                                &release_bomb_, &release_title_);
    }
    return -vkernel::kENOPROTOOPT;
  }

  long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                  KernelModel& kernel) override {
    ExecContext& ctx = kernel.context();
    if (level != rt_->sock->sol_level) return -vkernel::kENOPROTOOPT;
    for (const SockOptRuntime& so : rt_->sockopts) {
      if (!so.opt->gettable || so.opt->value != optname) continue;
      // get path: kernel fills the buffer; size it to the struct.
      if (val && val->size() < so.get_need) val->Resize(so.get_need);
      return engine_.RunCommand(so.get_rt, val, ctx, &executed_,
                                &release_bomb_, &release_title_);
    }
    return -vkernel::kENOPROTOOPT;
  }

  long Ioctl(uint64_t cmd_value, Buffer* arg, KernelModel& kernel) override {
    ExecContext& ctx = kernel.context();
    for (const CmdRuntime& rt : rt_->ioctls) {
      if (rt.match_value == cmd_value) {
        return engine_.RunCommand(rt, arg, ctx, &executed_, &release_bomb_,
                                  &release_title_);
      }
    }
    return -vkernel::kENOTTY;
  }

  long Bind(const Buffer& addr, KernelModel& kernel) override {
    return RunOp(rt_->bind, addr, kernel.context());
  }

  long Connect(const Buffer& addr, KernelModel& kernel) override {
    return RunOp(rt_->connect, addr, kernel.context());
  }

  long SendTo(const Buffer& data, const Buffer& addr,
              KernelModel& kernel) override {
    (void)data;
    return RunOp(rt_->sendto, addr, kernel.context());
  }

  long RecvFrom(Buffer* data, KernelModel& kernel) override {
    if (data) data->Resize(64);
    Buffer empty;
    return RunOp(rt_->recvfrom, empty, kernel.context());
  }

  long Listen(KernelModel& kernel) override {
    Buffer empty;
    return RunOp(rt_->listen, empty, kernel.context());
  }

  long Accept(KernelModel& kernel) override {
    Buffer empty;
    return RunOp(rt_->accept, empty, kernel.context());
  }

  void Release(KernelModel& kernel) override {
    if (release_bomb_) kernel.context().Crash(release_title_);
  }

 private:
  long RunOp(const OpRuntime& rt, const Buffer& addr, ExecContext& ctx) {
    const SocketOpSpec& spec = *rt.spec;
    if (!spec.supported) return -vkernel::kEOPNOTSUPP;
    ctx.Cover(rt.op_block);
    const StructSpec* addr_spec = rt_->addr_spec;
    const StructLayout& layout = rt_->addr_layout;
    if (addr_spec && !spec.checks.empty()) {
      if (addr.size() < layout.total_size) return -vkernel::kEFAULT;
      for (size_t k = 0; k < spec.checks.size(); ++k) {
        if (!CheckPasses(spec.checks[k], addr, layout, addr_spec)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(rt.check_blocks[k]);
      }
    }
    if (spec.bug) {
      const BugSpec& bug = *spec.bug;
      bool fire = false;
      switch (bug.trigger) {
        case BugSpec::Trigger::kFieldAtLeast:
          fire = addr_spec && ReadField(addr, layout, bug.field) >= bug.value;
          break;
        case BugSpec::Trigger::kFieldZero:
          fire = addr_spec && ReadField(addr, layout, bug.field) == 0;
          break;
        case BugSpec::Trigger::kFieldEquals:
          fire = addr_spec && ReadField(addr, layout, bug.field) == bug.value;
          break;
        case BugSpec::Trigger::kSequence:
          fire = executed_.Test(rt.bug_prior_idx);
          break;
        case BugSpec::Trigger::kOnRelease:
          release_bomb_ = true;
          release_title_ = bug.title;
          break;
        case BugSpec::Trigger::kAlways:
          fire = true;
          break;
      }
      if (fire) ctx.Crash(bug.title);
    }
    for (uint64_t block : rt.deep_block_ids) ctx.Cover(block);
    executed_.Set(rt.macro_idx);
    return 0;
  }

  const SocketRuntime* rt_;
  CommandEngine engine_;
  ExecutedSet executed_;
  bool release_bomb_ = false;
  std::string release_title_;
};

class ModelSocketFamily : public vkernel::SocketFamily {
 public:
  explicit ModelSocketFamily(const SocketSpec* sock)
      : sock_(sock), runtime_(sock) {}

  std::string Name() const override { return sock_->id; }
  uint64_t Domain() const override { return sock_->domain; }

  std::shared_ptr<vkernel::SocketHandler> Create(uint64_t type,
                                                 uint64_t protocol,
                                                 KernelModel& kernel,
                                                 long* err) override {
    if (sock_->sock_type != 0 && type != sock_->sock_type) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    if (sock_->protocol != 0 && protocol != sock_->protocol) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    kernel.context().Cover(runtime_.create_block);
    if (std::shared_ptr<FileHandler> pooled = runtime_.pool.Take()) {
      auto* sock = static_cast<ModelSocket*>(pooled.get());
      sock->Reset();
      return std::shared_ptr<vkernel::SocketHandler>(std::move(pooled),
                                                     sock);
    }
    std::shared_ptr<ModelSocket> sock =
        std::make_shared<ModelSocket>(&runtime_);
    sock->set_recycler(&runtime_.pool);
    return sock;
  }

 private:
  const SocketSpec* sock_;
  SocketRuntime runtime_;
};

}  // namespace

std::unique_ptr<vkernel::DeviceDriver>
MakeModelDevice(const DeviceSpec* dev)
{
  return std::make_unique<ModelDevice>(dev);
}

std::unique_ptr<vkernel::SocketFamily>
MakeModelSocketFamily(const SocketSpec* sock)
{
  return std::make_unique<ModelSocketFamily>(sock);
}

}  // namespace kernelgpt::drivers
