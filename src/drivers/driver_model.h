/// \file
/// Declarative models of synthetic kernel modules (device drivers and
/// socket families). One model is the single source of truth from which
/// the project derives three mutually consistent artifacts:
///
///   1. C source text (model_render)   — analyzed by the extractor, the
///      rule-based baseline, and the simulated analysis LLM;
///   2. runtime behaviour (model_runtime) — registered into the virtual
///      kernel and fuzzed;
///   3. the ground-truth specification (model_spec) — the oracle for the
///      paper's §5.1.3 manual-audit experiment and for tests.
///
/// Because all three derive from one model, a specification inferred
/// correctly from the rendered source is exactly the specification that
/// unlocks deep coverage at runtime — the causal chain the paper measures.

#ifndef KERNELGPT_DRIVERS_DRIVER_MODEL_H_
#define KERNELGPT_DRIVERS_DRIVER_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "syzlang/types.h"

namespace kernelgpt::drivers {

// ---------------------------------------------------------------------------
// Struct layout
// ---------------------------------------------------------------------------

/// One member of an ioctl/sockopt argument struct.
struct FieldSpec {
  enum class Kind {
    kScalar,    ///< Fixed-width integer.
    kArray,     ///< Fixed or flexible array of scalars.
    kString,    ///< char[] holding a NUL-terminated string.
    kStructRef, ///< Nested struct by value.
    kLenOf,     ///< Scalar whose value is the element count of a sibling.
    kFlags,     ///< Scalar restricted to a named flag set.
    kOutValue,  ///< Kernel-written output scalar (id, token, fd...).
  };

  std::string name;
  Kind kind = Kind::kScalar;
  int bits = 32;              ///< Element width for scalar/array/len/flags.
  uint64_t array_len = 0;     ///< kArray/kString: element count; 0 = flexible.
  std::string struct_ref;     ///< kStructRef: nested struct name.
  std::string len_of;         ///< kLenOf: sibling field this counts.
  std::string flags_ref;      ///< kFlags: flag-set name.
  std::string comment;        ///< Rendered as a trailing C comment.

  // -- Factories -----------------------------------------------------------
  static FieldSpec Scalar(std::string name, int bits,
                          std::string comment = "");
  static FieldSpec Array(std::string name, int elem_bits, uint64_t len,
                         std::string comment = "");
  static FieldSpec FlexArray(std::string name, int elem_bits,
                             std::string comment = "");
  static FieldSpec CString(std::string name, uint64_t len,
                           std::string comment = "");
  static FieldSpec Struct(std::string name, std::string struct_name,
                          std::string comment = "");
  static FieldSpec LenOf(std::string name, std::string target, int bits = 32,
                         std::string comment = "");
  static FieldSpec Flags(std::string name, std::string flag_set, int bits = 32,
                         std::string comment = "");
  static FieldSpec Out(std::string name, int bits,
                       std::string comment = "");
};

/// An argument struct (or union) definition.
struct StructSpec {
  std::string name;
  bool is_union = false;
  std::vector<FieldSpec> fields;
  std::string comment;

  const FieldSpec* FindField(const std::string& field_name) const;
};

/// A named flag set with symbolic members.
struct FlagSetSpec {
  std::string name;
  std::vector<std::pair<std::string, uint64_t>> values;
};

// ---------------------------------------------------------------------------
// Behaviour
// ---------------------------------------------------------------------------

/// A validation gate executed by the handler before the deep path. Each
/// check covers one basic block when reached; failing the predicate makes
/// the handler return -EINVAL early.
struct CheckSpec {
  enum class Kind {
    kRange,    ///< min <= field <= max.
    kEquals,   ///< field == value (magic/version checks).
    kNonZero,  ///< field != 0.
    kLenBound, ///< len-of field value must not exceed the sibling capacity.
  };

  std::string field;  ///< Top-level field of the argument struct.
  Kind kind = Kind::kRange;
  int64_t min = 0;
  int64_t max = 0;
  uint64_t value = 0;

  static CheckSpec Range(std::string field, int64_t min, int64_t max);
  static CheckSpec Equals(std::string field, uint64_t value);
  static CheckSpec NonZero(std::string field);
  static CheckSpec LenBound(std::string field);
};

/// A planted kernel bug reachable through one command's deep path.
struct BugSpec {
  /// Crash title as the sanitizer reports it, e.g.
  /// "kmalloc bug in ctl_ioctl".
  std::string title;
  /// CVE id when the paper lists one; empty otherwise.
  std::string cve;
  bool confirmed = false;
  bool fixed = false;
  /// True for long-known bugs reachable through existing Syzkaller specs
  /// (Table 3's baseline crashes); false for the 24 new Table 4 bugs.
  bool legacy = false;

  enum class Trigger {
    kFieldAtLeast,  ///< field >= value (oversized-allocation style).
    kFieldEquals,   ///< field == value.
    kFieldZero,     ///< field == 0 (divide-by-zero style).
    kSequence,      ///< Requires `prior_cmd` earlier on the same fd.
    kOnRelease,     ///< Fires on close() after this command ran (UAF style).
    kAlways,        ///< Any reach of the deep path fires it.
  };
  Trigger trigger = Trigger::kAlways;
  std::string field;      ///< Trigger field (top-level in the arg struct).
  uint64_t value = 0;     ///< Threshold / equality operand.
  std::string prior_cmd;  ///< kSequence: macro name of the prerequisite.
};

/// One ioctl command (or one switch arm of a generic handler).
struct IoctlSpec {
  std::string macro;        ///< Command macro name, e.g. "DM_LIST_DEVICES".
  uint64_t nr = 0;          ///< Sequence number within the magic.
  char ioc_dir = 'b';       ///< 'n' none, 'r' read, 'w' write, 'b' both.
  std::string arg_struct;   ///< Argument struct name; empty = scalar arg.
  syzlang::Dir dir = syzlang::Dir::kInOut;  ///< Pointer direction.
  std::vector<CheckSpec> checks;
  int deep_blocks = 4;      ///< Blocks covered after all checks pass.
  std::optional<BugSpec> bug;
  /// Non-empty when the command creates a new fd bound to the named
  /// secondary handler (KVM_CREATE_VM style); the fd is the return value.
  std::string creates_handler;
  std::string sub_function; ///< Rendered helper name; default derived.
  std::string comment;      ///< Doc comment on the helper.
};

/// One handler table (a file_operations instance). The primary handler is
/// reachable by opening the device node; secondary handlers are reachable
/// through fd-creating ioctls.
struct HandlerSpec {
  std::string name;  ///< e.g. "ctl", "vm", "vcpu".
  std::vector<IoctlSpec> ioctls;
};

/// How the driver registers its device node in the rendered source.
enum class RegistrationStyle {
  kMiscName,      ///< miscdevice .name only — node is "/dev/<name>".
  kMiscNodename,  ///< .name and .nodename set — node is "/dev/<nodename>"
                  ///< (the rare idiom SyzDescribe mis-handles, Fig. 2).
  kDeviceCreate,  ///< device_create(..., "foo%d", 0) in the init function.
  kProcCreate,    ///< proc_create("driver/foo") — node under /proc.
};

/// How the rendered ioctl handler dispatches on the command value.
enum class DispatchStyle {
  kDirectSwitch,  ///< switch (command) { case FULL_MACRO: ... }.
  kIocNrSwitch,   ///< cmd = _IOC_NR(command); switch (cmd) { case NR: }
                  ///< (the modification idiom SyzDescribe gets wrong).
  kTableLookup,   ///< fn = lookup_ioctl(cmd); static table of entries.
};

/// A complete device-driver model.
struct DeviceSpec {
  std::string id;            ///< Module name, e.g. "dm"; also corpus key.
  std::string display_name;  ///< Table 5 row label, e.g. "loop-control".
  std::string dev_node;      ///< True device path, e.g. "/dev/mapper/control".
  uint64_t magic = 0;        ///< ioctl type byte.
  std::string magic_macro;   ///< e.g. "DM_IOCTL".
  RegistrationStyle reg = RegistrationStyle::kMiscName;
  DispatchStyle dispatch = DispatchStyle::kDirectSwitch;
  /// Wrapper functions between the registered handler and the dispatch
  /// switch; each extra level is one more iterative-analysis step.
  int delegation_depth = 1;
  HandlerSpec primary;
  std::vector<HandlerSpec> secondary;
  std::vector<StructSpec> structs;
  std::vector<FlagSetSpec> flag_sets;
  /// Extra numeric macros (length limits etc.) rendered as #defines.
  std::vector<std::pair<std::string, uint64_t>> extra_macros;
  /// Fraction of this driver's syscalls covered by the hand-written
  /// "existing Syzkaller" specification (0 = undescribed driver).
  double existing_fraction = 0.0;
  /// False for drivers not loaded under the syzbot config (Table 1's
  /// allyesconfig vs syzbot distinction).
  bool loaded_in_syzbot = true;
  /// True for debug/hardware-gated drivers excluded from generation.
  bool excluded = false;

  const StructSpec* FindStruct(const std::string& name) const;
  const HandlerSpec* FindHandler(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

/// One setsockopt/getsockopt option.
struct SockOptSpec {
  std::string macro;       ///< Option macro name, e.g. "RDS_RECVERR".
  uint64_t value = 0;      ///< Option number.
  std::string arg_struct;  ///< Payload struct; empty = int payload.
  bool settable = true;
  bool gettable = false;
  std::vector<CheckSpec> checks;
  int deep_blocks = 3;
  std::optional<BugSpec> bug;
  std::string comment;
};

/// Behaviour of one data-path socket operation (bind/sendto/...).
struct SocketOpSpec {
  bool supported = false;
  std::vector<CheckSpec> checks;  ///< Checked against the addr struct.
  int deep_blocks = 3;
  std::optional<BugSpec> bug;
};

/// A complete socket-family model.
struct SocketSpec {
  std::string id;             ///< e.g. "rds".
  std::string family_macro;   ///< e.g. "AF_RDS".
  uint64_t domain = 0;        ///< AF_* numeric value.
  uint64_t sock_type = 0;     ///< Required SOCK_*; 0 = any accepted.
  std::string sock_type_macro;
  uint64_t protocol = 0;      ///< Required protocol; 0 = any.
  uint64_t sol_level = 0;     ///< SOL_* level for sockopts.
  std::string sol_macro;
  std::string addr_struct;    ///< sockaddr struct name for bind/connect.
  std::vector<SockOptSpec> sockopts;
  std::vector<IoctlSpec> ioctls;  ///< Socket ioctls (SIOC*).
  SocketOpSpec bind;
  SocketOpSpec connect;
  SocketOpSpec sendto;
  SocketOpSpec recvfrom;
  SocketOpSpec listen;
  SocketOpSpec accept;
  std::vector<StructSpec> structs;
  std::vector<FlagSetSpec> flag_sets;
  std::vector<std::pair<std::string, uint64_t>> extra_macros;
  double existing_fraction = 0.0;
  bool loaded_in_syzbot = true;
  bool excluded = false;
  /// True for specs backed by the stateful vnet stack (src/vnet/) rather
  /// than the declarative ModelSocketFamily runtime; Corpus::RegisterAll
  /// routes them to the vnet family factories.
  bool vnet = false;

  const StructSpec* FindStruct(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Layout computation (shared by renderer, runtime, and spec generator)
// ---------------------------------------------------------------------------

/// Byte offset/size of one field in a packed layout.
struct FieldLayout {
  const FieldSpec* field = nullptr;
  size_t offset = 0;
  size_t size = 0;
};

/// Packed layout of a struct (the corpus orders fields naturally, so a
/// packed layout matches the unpadded C layout).
struct StructLayout {
  size_t total_size = 0;
  std::vector<FieldLayout> fields;

  const FieldLayout* Find(const std::string& field_name) const;
};

/// Computes the layout of `s`, resolving nested structs through `lookup`
/// (a list of all structs in the module).
StructLayout ComputeLayout(const StructSpec& s,
                           const std::vector<StructSpec>& all);

/// Size in bytes of a struct by name; 0 when unknown.
size_t StructByteSize(const std::string& name,
                      const std::vector<StructSpec>& all);

/// The full ioctl command value for a command of `dev` (applies the
/// Linux _IOC encoding with the model's magic and the arg struct size).
uint64_t FullCommandValue(const DeviceSpec& dev, const IoctlSpec& cmd);

/// Well-known AF_/SOL_/SOCK_ macro values shared by renderer and runtime.
uint64_t SocketConstValue(const std::string& macro);

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_DRIVER_MODEL_H_
