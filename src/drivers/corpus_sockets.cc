#include "drivers/corpus.h"

#include "util/strings.h"

/// \file
/// Socket-family models for the ten Table 6 protocols. SyzDescribe cannot
/// analyze sockets at all; the comparison here is existing Syzkaller specs
/// vs KernelGPT.

namespace kernelgpt::drivers {

namespace {

using syzlang::Dir;
using util::Format;

SockOptSpec
Opt(std::string macro, uint64_t value, std::string arg_struct, bool settable,
    bool gettable, std::vector<CheckSpec> checks = {}, int deep = 3,
    std::string comment = "")
{
  SockOptSpec o;
  o.macro = std::move(macro);
  o.value = value;
  o.arg_struct = std::move(arg_struct);
  o.settable = settable;
  o.gettable = gettable;
  o.checks = std::move(checks);
  o.deep_blocks = deep;
  o.comment = std::move(comment);
  return o;
}

StructSpec
SockAddr(const std::string& name, uint64_t family, int addr_words)
{
  StructSpec s;
  s.name = name;
  s.comment = "socket address for this family";
  s.fields.push_back(FieldSpec::Scalar("family", 16, "address family"));
  s.fields.push_back(FieldSpec::Scalar("port", 16));
  for (int i = 0; i < addr_words; ++i) {
    s.fields.push_back(FieldSpec::Scalar(Format("addr%d", i), 32));
  }
  (void)family;
  return s;
}

SocketOpSpec
Op(std::vector<CheckSpec> checks = {}, int deep = 3)
{
  SocketOpSpec op;
  op.supported = true;
  op.checks = std::move(checks);
  op.deep_blocks = deep;
  return op;
}

}  // namespace

SocketSpec
MakeRdsSocket()
{
  SocketSpec sock;
  sock.id = "rds";
  sock.family_macro = "AF_RDS";
  sock.domain = SocketConstValue("AF_RDS");
  sock.sock_type = SocketConstValue("SOCK_SEQPACKET");
  sock.sock_type_macro = "SOCK_SEQPACKET";
  sock.sol_level = SocketConstValue("SOL_RDS");
  sock.sol_macro = "SOL_RDS";
  sock.addr_struct = "sockaddr_rds";
  sock.existing_fraction = 0.5;  // recvmsg covered, sendto missing (Table 4).

  sock.structs.push_back(SockAddr("sockaddr_rds", sock.domain, 1));

  StructSpec recverr;
  recverr.name = "rds_recverr";
  recverr.fields = {FieldSpec::Scalar("enable", 32, "0 disables, 1 enables")};
  sock.structs.push_back(std::move(recverr));

  StructSpec cancel;
  cancel.name = "rds_cancel_sent_to";
  cancel.fields = {
      FieldSpec::Scalar("addr", 32, "peer address to cancel sends to"),
  };
  sock.structs.push_back(std::move(cancel));

  StructSpec cong;
  cong.name = "rds_cong_monitor";
  cong.fields = {FieldSpec::Scalar("mask", 64, "congestion monitor bitmask")};
  sock.structs.push_back(std::move(cong));

  sock.sockopts.push_back(Opt("RDS_RECVERR", 5, "rds_recverr", true, true,
                              {CheckSpec::Range("enable", 0, 1)}, 3,
                              "toggle error queue delivery"));
  sock.sockopts.push_back(Opt("RDS_CANCEL_SENT_TO", 1, "rds_cancel_sent_to",
                              true, false, {}, 4,
                              "cancel pending sends to a peer"));
  sock.sockopts.push_back(Opt("RDS_CONG_MONITOR", 6, "rds_cong_monitor", true,
                              true, {}, 3, "congestion monitoring"));
  sock.sockopts.push_back(Opt("RDS_GET_MR", 2, "rds_cong_monitor", true,
                              false, {}, 4, "register a memory region"));
  sock.sockopts.push_back(Opt("RDS_FREE_MR", 3, "rds_cong_monitor", true,
                              false, {}, 3, "release a memory region"));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  // The sendto path Syzkaller lacked; its cmsg parser indexes an array
  // with an unchecked 16-bit value (CVE-2024-23849's shape).
  sock.sendto = Op({CheckSpec::Equals("family", sock.domain)}, 5);
  {
    BugSpec bug;
    bug.title = "UBSAN: array-index-out-of-bounds in rds_cmsg_recv";
    bug.cve = "CVE-2024-23849";
    bug.confirmed = true;
    bug.fixed = true;
    bug.trigger = BugSpec::Trigger::kFieldAtLeast;
    bug.field = "port";
    bug.value = 0xf000;
    sock.sendto.bug = std::move(bug);
  }
  sock.recvfrom = Op({}, 4);
  return sock;
}

SocketSpec
MakeL2tpIp6Socket()
{
  SocketSpec sock;
  sock.id = "l2tp_ip6";
  sock.family_macro = "AF_INET6";
  sock.domain = SocketConstValue("AF_INET6");
  sock.sock_type = SocketConstValue("SOCK_DGRAM");
  sock.sock_type_macro = "SOCK_DGRAM";
  sock.protocol = 115;  // IPPROTO_L2TP.
  sock.sol_level = SocketConstValue("SOL_IPV6");
  sock.sol_macro = "SOL_IPV6";
  sock.addr_struct = "sockaddr_l2tpip6";
  sock.existing_fraction = 0.4;

  StructSpec addr = SockAddr("sockaddr_l2tpip6", sock.domain, 4);
  addr.fields.push_back(FieldSpec::Scalar("conn_id", 32, "tunnel id"));
  sock.structs.push_back(std::move(addr));

  StructSpec intval;
  intval.name = "l2tp_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  // A wide IPv6 option surface — the reason KernelGPT emits 99 syscalls
  // where Syzkaller used one flags-typed getsockopt.
  const char* const opts[] = {
      "IPV6_ADDRFORM",      "IPV6_2292PKTINFO",   "IPV6_2292HOPOPTS",
      "IPV6_2292DSTOPTS",   "IPV6_2292RTHDR",     "IPV6_2292PKTOPTIONS",
      "IPV6_CHECKSUM",      "IPV6_2292HOPLIMIT",  "IPV6_NEXTHOP",
      "IPV6_AUTHHDR",       "IPV6_UNICAST_HOPS",  "IPV6_MULTICAST_IF",
      "IPV6_MULTICAST_HOPS","IPV6_MULTICAST_LOOP","IPV6_JOIN_GROUP",
      "IPV6_LEAVE_GROUP",   "IPV6_ROUTER_ALERT",  "IPV6_MTU_DISCOVER",
      "IPV6_MTU",           "IPV6_RECVERR",       "IPV6_V6ONLY",
      "IPV6_JOIN_ANYCAST",  "IPV6_LEAVE_ANYCAST", "IPV6_MULTICAST_ALL",
      "IPV6_AUTOFLOWLABEL", "IPV6_DONTFRAG",      "IPV6_RECVPKTINFO",
      "IPV6_PKTINFO",       "IPV6_RECVHOPLIMIT",  "IPV6_HOPLIMIT",
      "IPV6_RECVHOPOPTS",   "IPV6_HOPOPTS",       "IPV6_RTHDRDSTOPTS",
      "IPV6_RECVRTHDR",     "IPV6_RTHDR",         "IPV6_RECVDSTOPTS",
      "IPV6_DSTOPTS",       "IPV6_RECVPATHMTU",   "IPV6_PATHMTU",
      "IPV6_TRANSPARENT",   "IPV6_UNICAST_IF",    "IPV6_RECVFRAGSIZE",
      "IPV6_FREEBIND",
  };
  uint64_t value = 1;
  for (const char* name : opts) {
    sock.sockopts.push_back(Opt(name, value++, "l2tp_int_opt", true, true,
                                {}, 2));
  }

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::NonZero("conn_id")},
                    4);
  sock.sendto = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  {
    BugSpec bug;
    bug.title = "memory leak in __ip6_append_data";
    bug.confirmed = true;
    bug.trigger = BugSpec::Trigger::kAlways;
    sock.sendto.bug = std::move(bug);
  }
  sock.recvfrom = Op({}, 3);
  return sock;
}

SocketSpec
MakeLlcSocket()
{
  SocketSpec sock;
  sock.id = "llc";
  sock.family_macro = "AF_LLC";
  sock.domain = SocketConstValue("AF_LLC");
  sock.sock_type = SocketConstValue("SOCK_STREAM");
  sock.sock_type_macro = "SOCK_STREAM";
  sock.sol_level = SocketConstValue("SOL_LLC");
  sock.sol_macro = "SOL_LLC";
  sock.addr_struct = "sockaddr_llc";
  sock.existing_fraction = 0.4;

  StructSpec addr = SockAddr("sockaddr_llc", sock.domain, 2);
  addr.fields.push_back(FieldSpec::Scalar("sap", 8, "service access point"));
  sock.structs.push_back(std::move(addr));

  StructSpec intval;
  intval.name = "llc_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  const char* const opts[] = {
      "LLC_OPT_RETRY",    "LLC_OPT_SIZE",    "LLC_OPT_ACK_TMR_EXP",
      "LLC_OPT_P_TMR_EXP","LLC_OPT_REJ_TMR_EXP", "LLC_OPT_BUSY_TMR_EXP",
      "LLC_OPT_TX_WIN",   "LLC_OPT_RX_WIN",  "LLC_OPT_PKTINFO",
  };
  uint64_t value = 1;
  for (const char* name : opts) {
    sock.sockopts.push_back(Opt(name, value++, "llc_int_opt", true, true,
                                {CheckSpec::Range("value", 0, 127)}, 2));
  }
  sock.bind = Op({CheckSpec::Equals("family", sock.domain),
                  CheckSpec::Range("sap", 0, 127)},
                 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  sock.listen = Op({}, 2);
  sock.accept = Op({}, 3);
  return sock;
}

SocketSpec
MakeMptcpSocket()
{
  SocketSpec sock;
  sock.id = "mptcp";
  sock.family_macro = "AF_INET";
  sock.domain = SocketConstValue("AF_INET");
  sock.sock_type = SocketConstValue("SOCK_STREAM");
  sock.sock_type_macro = "SOCK_STREAM";
  sock.protocol = 262;  // IPPROTO_MPTCP.
  sock.sol_level = SocketConstValue("SOL_MPTCP");
  sock.sol_macro = "SOL_MPTCP";
  sock.addr_struct = "sockaddr_mptcp";
  sock.existing_fraction = 0.3;

  sock.structs.push_back(SockAddr("sockaddr_mptcp", sock.domain, 1));

  StructSpec info;
  info.name = "mptcp_info_req";
  info.fields = {
      FieldSpec::Scalar("flags", 32),
      FieldSpec::Out("subflows", 8, "out: number of subflows"),
      FieldSpec::Out("add_addr_signal", 8),
  };
  sock.structs.push_back(std::move(info));

  StructSpec subflow;
  subflow.name = "mptcp_subflow_addrs";
  subflow.fields = {
      FieldSpec::LenOf("count", "addrs", 32),
      FieldSpec::Array("addrs", 64, 8, "subflow address slots"),
  };
  sock.structs.push_back(std::move(subflow));

  StructSpec intval;
  intval.name = "mptcp_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  const char* const opts[] = {
      "MPTCP_ENABLED",   "MPTCP_SCHEDULER", "MPTCP_PATH_MANAGER",
      "MPTCP_CHECKSUM",  "MPTCP_ALLOW_JOIN","MPTCP_ADD_ADDR_TIMEOUT",
      "MPTCP_STALE_LOSS","MPTCP_PM_TYPE",   "MPTCP_RETRANS",
      "MPTCP_FASTOPEN",  "MPTCP_TCP_FALLBACK",
  };
  uint64_t value = 40;
  for (const char* name : opts) {
    sock.sockopts.push_back(
        Opt(name, value++, "mptcp_int_opt", true, true, {}, 2));
  }
  sock.sockopts.push_back(Opt("MPTCP_INFO", 60, "mptcp_info_req", false, true,
                              {}, 3, "query connection state"));
  sock.sockopts.push_back(Opt("MPTCP_SUBFLOW_ADDRS", 61,
                              "mptcp_subflow_addrs", false, true, {}, 3,
                              "enumerate subflow addresses"));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain)}, 5);
  sock.sendto = Op({}, 4);
  sock.recvfrom = Op({}, 3);
  sock.listen = Op({}, 2);
  sock.accept = Op({}, 3);
  return sock;
}

SocketSpec
MakePacketSocket()
{
  SocketSpec sock;
  sock.id = "packet";
  sock.family_macro = "AF_PACKET";
  sock.domain = SocketConstValue("AF_PACKET");
  sock.sock_type = 0;  // Accepts RAW and DGRAM.
  sock.sol_level = SocketConstValue("SOL_PACKET");
  sock.sol_macro = "SOL_PACKET";
  sock.addr_struct = "sockaddr_ll";
  sock.existing_fraction = 0.9;

  StructSpec addr;
  addr.name = "sockaddr_ll";
  addr.comment = "link-layer socket address";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Scalar("protocol", 16),
      FieldSpec::Scalar("ifindex", 32, "interface index"),
      FieldSpec::Scalar("hatype", 16),
      FieldSpec::Scalar("pkttype", 8),
      FieldSpec::Scalar("halen", 8),
      FieldSpec::Array("addr", 8, 8, "hardware address"),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec ring;
  ring.name = "tpacket_req";
  ring.comment = "ring buffer geometry";
  ring.fields = {
      FieldSpec::Scalar("tp_block_size", 32),
      FieldSpec::Scalar("tp_block_nr", 32),
      FieldSpec::Scalar("tp_frame_size", 32),
      FieldSpec::Scalar("tp_frame_nr", 32),
  };
  sock.structs.push_back(std::move(ring));

  StructSpec mreq;
  mreq.name = "packet_mreq";
  mreq.fields = {
      FieldSpec::Scalar("mr_ifindex", 32),
      FieldSpec::Scalar("mr_type", 16),
      FieldSpec::LenOf("mr_alen", "mr_address", 16),
      FieldSpec::Array("mr_address", 8, 8),
  };
  sock.structs.push_back(std::move(mreq));

  StructSpec intval;
  intval.name = "packet_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  sock.sockopts.push_back(Opt("PACKET_RX_RING", 5, "tpacket_req", true, false,
                              {CheckSpec::NonZero("tp_block_size"),
                               CheckSpec::NonZero("tp_frame_size")},
                              5, "map an rx ring"));
  sock.sockopts.push_back(Opt("PACKET_TX_RING", 13, "tpacket_req", true,
                              false, {CheckSpec::NonZero("tp_block_size")}, 5,
                              "map a tx ring"));
  sock.sockopts.push_back(Opt("PACKET_ADD_MEMBERSHIP", 1, "packet_mreq", true,
                              false, {CheckSpec::LenBound("mr_alen")}, 3));
  sock.sockopts.push_back(Opt("PACKET_DROP_MEMBERSHIP", 2, "packet_mreq",
                              true, false, {}, 3));
  sock.sockopts.push_back(
      Opt("PACKET_AUXDATA", 8, "packet_int_opt", true, true, {}, 2));
  sock.sockopts.push_back(
      Opt("PACKET_VERSION", 10, "packet_int_opt", true, true,
          {CheckSpec::Range("value", 0, 2)}, 2));
  sock.sockopts.push_back(
      Opt("PACKET_RESERVE", 12, "packet_int_opt", true, true, {}, 2));
  sock.sockopts.push_back(
      Opt("PACKET_QDISC_BYPASS", 20, "packet_int_opt", true, true, {}, 2));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.sendto = Op({}, 4);
  sock.recvfrom = Op({}, 3);
  return sock;
}

SocketSpec
MakePhonetSocket()
{
  SocketSpec sock;
  sock.id = "phonet";
  sock.family_macro = "AF_PHONET";
  sock.domain = SocketConstValue("AF_PHONET");
  sock.sock_type = SocketConstValue("SOCK_DGRAM");
  sock.sock_type_macro = "SOCK_DGRAM";
  sock.sol_level = SocketConstValue("SOL_PNPIPE");
  sock.sol_macro = "SOL_PNPIPE";
  sock.addr_struct = "sockaddr_pn";
  sock.existing_fraction = 0.55;

  StructSpec addr;
  addr.name = "sockaddr_pn";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Scalar("obj", 16, "phonet object id"),
      FieldSpec::Scalar("dev", 8),
      FieldSpec::Scalar("resource", 8),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec intval;
  intval.name = "pn_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  sock.sockopts.push_back(Opt("PNPIPE_ENCAP", 1, "pn_int_opt", true, true,
                              {CheckSpec::Range("value", 0, 1)}, 2));
  sock.sockopts.push_back(
      Opt("PNPIPE_IFINDEX", 2, "pn_int_opt", false, true, {}, 2));
  sock.sockopts.push_back(Opt("PNPIPE_HANDLE", 3, "pn_int_opt", true, true,
                              {}, 3));
  sock.sockopts.push_back(Opt("PNPIPE_INITSTATE", 4, "pn_int_opt", true,
                              false, {CheckSpec::Range("value", 0, 1)}, 2));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.sendto = Op({CheckSpec::Equals("family", sock.domain)}, 4);
  sock.recvfrom = Op({}, 3);
  return sock;
}

SocketSpec
MakePppol2tpSocket()
{
  SocketSpec sock;
  sock.id = "pppol2tp";
  sock.family_macro = "AF_PPPOX";
  sock.domain = SocketConstValue("AF_PPPOX");
  sock.sock_type = SocketConstValue("SOCK_DGRAM");
  sock.sock_type_macro = "SOCK_DGRAM";
  sock.sol_level = SocketConstValue("SOL_PPPOL2TP");
  sock.sol_macro = "SOL_PPPOL2TP";
  sock.addr_struct = "sockaddr_pppol2tp";
  sock.existing_fraction = 0.7;

  StructSpec addr;
  addr.name = "sockaddr_pppol2tp";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Scalar("pid", 32),
      FieldSpec::Scalar("fd", 32, "tunnel socket fd"),
      FieldSpec::Scalar("s_tunnel", 16, "local tunnel id"),
      FieldSpec::Scalar("s_session", 16),
      FieldSpec::Scalar("d_tunnel", 16),
      FieldSpec::Scalar("d_session", 16),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec intval;
  intval.name = "pppol2tp_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  sock.sockopts.push_back(Opt("PPPOL2TP_SO_DEBUG", 1, "pppol2tp_int_opt",
                              true, true, {}, 2));
  sock.sockopts.push_back(Opt("PPPOL2TP_SO_RECVSEQ", 2, "pppol2tp_int_opt",
                              true, true, {CheckSpec::Range("value", 0, 1)},
                              2));
  sock.sockopts.push_back(Opt("PPPOL2TP_SO_SENDSEQ", 3, "pppol2tp_int_opt",
                              true, true, {CheckSpec::Range("value", 0, 1)},
                              2));
  sock.sockopts.push_back(Opt("PPPOL2TP_SO_LNSMODE", 4, "pppol2tp_int_opt",
                              true, true, {CheckSpec::Range("value", 0, 1)},
                              2));
  sock.sockopts.push_back(Opt("PPPOL2TP_SO_REORDERTO", 5, "pppol2tp_int_opt",
                              true, true, {}, 3));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain)}, 3);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::NonZero("s_tunnel")},
                    5);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  return sock;
}

SocketSpec
MakeRfcommSocket()
{
  SocketSpec sock;
  sock.id = "rfcomm";
  sock.family_macro = "AF_BLUETOOTH";
  sock.domain = SocketConstValue("AF_BLUETOOTH");
  sock.sock_type = SocketConstValue("SOCK_STREAM");
  sock.sock_type_macro = "SOCK_STREAM";
  sock.protocol = 3;  // BTPROTO_RFCOMM.
  sock.sol_level = SocketConstValue("SOL_BLUETOOTH");
  sock.sol_macro = "SOL_BLUETOOTH";
  sock.addr_struct = "sockaddr_rc";
  sock.existing_fraction = 1.0;

  StructSpec addr;
  addr.name = "sockaddr_rc";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Array("bdaddr", 8, 6, "bluetooth device address"),
      FieldSpec::Scalar("channel", 8, "rfcomm channel 1..30"),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec sec;
  sec.name = "bt_security";
  sec.fields = {
      FieldSpec::Scalar("level", 8, "security level 0..4"),
      FieldSpec::Scalar("key_size", 8),
  };
  sock.structs.push_back(std::move(sec));

  StructSpec intval;
  intval.name = "rfcomm_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  sock.sockopts.push_back(Opt("BT_SECURITY", 4, "bt_security", true, true,
                              {CheckSpec::Range("level", 0, 4)}, 3));
  sock.sockopts.push_back(Opt("BT_DEFER_SETUP", 7, "rfcomm_int_opt", true,
                              true, {CheckSpec::Range("value", 0, 1)}, 2));
  sock.sockopts.push_back(
      Opt("BT_FLUSHABLE", 8, "rfcomm_int_opt", true, true, {}, 2));
  sock.sockopts.push_back(
      Opt("BT_POWER", 9, "rfcomm_int_opt", true, true, {}, 2));
  sock.sockopts.push_back(
      Opt("BT_CHANNEL_POLICY", 10, "rfcomm_int_opt", true, true, {}, 2));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain),
                  CheckSpec::Range("channel", 1, 30)},
                 4);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::Range("channel", 1, 30)},
                    4);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  sock.listen = Op({}, 2);
  sock.accept = Op({}, 3);
  return sock;
}

SocketSpec
MakeScoSocket()
{
  SocketSpec sock;
  sock.id = "sco";
  sock.family_macro = "AF_BLUETOOTH";
  sock.domain = SocketConstValue("AF_BLUETOOTH");  // Shared with rfcomm;
                                                   // routed by protocol.
  sock.sock_type = SocketConstValue("SOCK_SEQPACKET");
  sock.sock_type_macro = "SOCK_SEQPACKET";
  sock.protocol = 2;  // BTPROTO_SCO.
  sock.sol_level = SocketConstValue("SOL_BLUETOOTH") + 100;
  sock.sol_macro = "SOL_SCO";
  sock.addr_struct = "sockaddr_sco";
  sock.existing_fraction = 1.0;

  StructSpec addr;
  addr.name = "sockaddr_sco";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Array("bdaddr", 8, 6),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec voice;
  voice.name = "sco_voice_setting";
  voice.fields = {FieldSpec::Scalar("setting", 16, "voice coding setting")};
  sock.structs.push_back(std::move(voice));

  StructSpec conninfo;
  conninfo.name = "sco_conninfo";
  conninfo.fields = {
      FieldSpec::Out("hci_handle", 16),
      FieldSpec::Array("dev_class", 8, 3),
  };
  sock.structs.push_back(std::move(conninfo));

  sock.sockopts.push_back(Opt("SCO_OPTIONS", 1, "sco_voice_setting", true,
                              true, {}, 2));
  sock.sockopts.push_back(Opt("SCO_CONNINFO", 2, "sco_conninfo", false, true,
                              {}, 2));
  sock.sockopts.push_back(Opt("BT_VOICE", 11, "sco_voice_setting", true, true,
                              {CheckSpec::Range("setting", 0, 0x3ff)}, 3));
  sock.sockopts.push_back(Opt("BT_PKT_STATUS", 16, "sco_voice_setting", true,
                              true, {}, 2));

  sock.bind = Op({CheckSpec::Equals("family",
                                    SocketConstValue("AF_BLUETOOTH"))},
                 3);
  sock.connect = Op({CheckSpec::Equals("family",
                                       SocketConstValue("AF_BLUETOOTH"))},
                    4);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  sock.listen = Op({}, 2);
  sock.accept = Op({}, 3);
  return sock;
}

SocketSpec
MakeCaifSocket()
{
  SocketSpec sock;
  sock.id = "caif";
  sock.family_macro = "AF_CAIF";
  sock.domain = SocketConstValue("AF_CAIF");
  sock.sock_type = SocketConstValue("SOCK_STREAM");
  sock.sock_type_macro = "SOCK_STREAM";
  sock.sol_level = SocketConstValue("SOL_CAIF");
  sock.sol_macro = "SOL_CAIF";
  sock.addr_struct = "sockaddr_caif";
  sock.existing_fraction = 0.6;

  StructSpec addr;
  addr.name = "sockaddr_caif";
  addr.fields = {
      FieldSpec::Scalar("family", 16),
      FieldSpec::Scalar("channel", 16, "caif channel id"),
      FieldSpec::Scalar("connection_type", 32),
  };
  sock.structs.push_back(std::move(addr));

  StructSpec link;
  link.name = "caif_link_opt";
  link.fields = {
      FieldSpec::Scalar("priority", 32),
      FieldSpec::CString("name", 16, "link interface name"),
  };
  sock.structs.push_back(std::move(link));

  sock.sockopts.push_back(Opt("CAIFSO_LINK_SELECT", 127, "caif_link_opt",
                              true, false,
                              {CheckSpec::Range("priority", 0, 7)}, 3));
  sock.sockopts.push_back(Opt("CAIFSO_REQ_PARAM", 128, "caif_link_opt", true,
                              true, {}, 3));

  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::Range("connection_type", 0, 5)},
                    5);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  return sock;
}

SocketSpec
MakeTcpSocket()
{
  SocketSpec sock;
  sock.id = "tcp";
  sock.family_macro = "AF_INET";
  sock.domain = SocketConstValue("AF_INET");
  sock.sock_type = SocketConstValue("SOCK_STREAM");
  sock.sock_type_macro = "SOCK_STREAM";
  sock.protocol = 6;  // IPPROTO_TCP.
  sock.sol_level = SocketConstValue("SOL_TCP");
  sock.sol_macro = "SOL_TCP";
  sock.addr_struct = "sockaddr_tcp";
  sock.existing_fraction = 0.4;
  sock.vnet = true;  // Backed by the stateful vnet stack.

  sock.structs.push_back(SockAddr("sockaddr_tcp", sock.domain, 1));

  StructSpec intval;
  intval.name = "tcp_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  StructSpec info;
  info.name = "tcp_info_min";
  info.fields = {
      FieldSpec::Out("state", 8, "out: TCP state ordinal"),
      FieldSpec::Out("backlog", 8, "out: accept backlog limit"),
      FieldSpec::Out("qlen", 32, "out: receive-queue bytes"),
  };
  sock.structs.push_back(std::move(info));

  sock.sockopts.push_back(Opt("TCP_NODELAY", 1, "tcp_int_opt", true, true,
                              {CheckSpec::Range("value", 0, 1)}, 2));
  sock.sockopts.push_back(Opt("TCP_MAXSEG", 2, "tcp_int_opt", true, true,
                              {CheckSpec::Range("value", 64, 1460)}, 2));
  sock.sockopts.push_back(Opt("TCP_WINDOW_CLAMP", 10, "tcp_int_opt", true,
                              true, {CheckSpec::Range("value", 16, 4096)}, 2,
                              "receive-queue byte budget"));
  sock.sockopts.push_back(Opt("TCP_INFO", 11, "tcp_info_min", false, true, {},
                              3, "query connection state"));
  sock.sockopts.push_back(Opt("TCP_REUSE_TIMEWAIT", 13, "tcp_int_opt", true,
                              true, {CheckSpec::Range("value", 0, 1)}, 2,
                              "SO_REUSEADDR analog for TIME_WAIT ports"));
  sock.sockopts.push_back(Opt("TCP_BACKLOG", 14, "tcp_int_opt", true, true,
                              {CheckSpec::Range("value", 1, 8)}, 2,
                              "accept-queue depth"));

  // Small port range so generated programs collide on ports often enough
  // to establish loopback connections (port 0 = ephemeral).
  sock.bind = Op({CheckSpec::Equals("family", sock.domain),
                  CheckSpec::Range("port", 0, 9)},
                 3);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::Range("port", 0, 9)},
                    3);
  sock.sendto = Op({}, 3);
  sock.recvfrom = Op({}, 3);
  sock.listen = Op({}, 2);
  sock.accept = Op({}, 3);
  return sock;
}

SocketSpec
MakeUdpSocket()
{
  SocketSpec sock;
  sock.id = "udp";
  sock.family_macro = "AF_INET";
  sock.domain = SocketConstValue("AF_INET");
  sock.sock_type = SocketConstValue("SOCK_DGRAM");
  sock.sock_type_macro = "SOCK_DGRAM";
  sock.protocol = 17;  // IPPROTO_UDP.
  sock.sol_level = SocketConstValue("SOL_UDP");
  sock.sol_macro = "SOL_UDP";
  sock.addr_struct = "sockaddr_udp";
  sock.existing_fraction = 0.4;
  sock.vnet = true;  // Backed by the stateful vnet stack.

  sock.structs.push_back(SockAddr("sockaddr_udp", sock.domain, 1));

  StructSpec intval;
  intval.name = "udp_int_opt";
  intval.fields = {FieldSpec::Scalar("value", 32)};
  sock.structs.push_back(std::move(intval));

  StructSpec qlen;
  qlen.name = "udp_qlen";
  qlen.fields = {FieldSpec::Out("qlen", 32, "out: queued datagrams")};
  sock.structs.push_back(std::move(qlen));

  sock.sockopts.push_back(Opt("UDP_CORK", 1, "udp_int_opt", true, true,
                              {CheckSpec::Range("value", 0, 1)}, 2,
                              "merge sends until uncorked"));
  sock.sockopts.push_back(Opt("UDP_QCAP", 2, "udp_int_opt", true, true,
                              {CheckSpec::Range("value", 1, 64)}, 2,
                              "receive-queue datagram budget"));
  sock.sockopts.push_back(Opt("UDP_QLEN", 3, "udp_qlen", false, true, {}, 2,
                              "query receive-queue depth"));

  sock.bind = Op({CheckSpec::Equals("family", sock.domain),
                  CheckSpec::Range("port", 0, 9)},
                 3);
  sock.connect = Op({CheckSpec::Equals("family", sock.domain),
                     CheckSpec::Range("port", 0, 9)},
                    3);
  sock.sendto = Op({CheckSpec::Equals("family", sock.domain),
                    CheckSpec::Range("port", 0, 9)},
                   3);
  sock.recvfrom = Op({}, 3);
  return sock;
}

}  // namespace kernelgpt::drivers
