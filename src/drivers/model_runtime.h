/// \file
/// Runtime interpretation of driver/socket models: turns a DeviceSpec or
/// SocketSpec into live vkernel drivers. The interpreter enforces exactly
/// the validation logic the rendered source describes (same command
/// matching, same copy sizes, same checks, same bugs), so source analysis
/// and runtime behaviour cannot diverge.

#ifndef KERNELGPT_DRIVERS_MODEL_RUNTIME_H_
#define KERNELGPT_DRIVERS_MODEL_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "drivers/driver_model.h"
#include "vkernel/model.h"

namespace kernelgpt::drivers {

/// Stable coverage block id for a (module, role, detail, index) tuple.
/// Both the runtime and the experiment harness use this to reason about
/// which blocks belong to which module.
uint64_t BlockId(const std::string& module, const std::string& role,
                 const std::string& detail, uint32_t index);

/// Total number of distinct coverage blocks a device can produce — used
/// by tests to bound observed coverage.
size_t MaxBlocksOf(const DeviceSpec& dev);

/// Creates a virtual-kernel driver interpreting `dev`. The spec must
/// outlive the kernel (corpus specs are stored in a registry).
std::unique_ptr<vkernel::DeviceDriver> MakeModelDevice(const DeviceSpec* dev);

/// Creates a virtual-kernel socket family interpreting `sock`.
std::unique_ptr<vkernel::SocketFamily> MakeModelSocketFamily(
    const SocketSpec* sock);

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_MODEL_RUNTIME_H_
