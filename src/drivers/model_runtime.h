/// \file
/// Runtime interpretation of driver/socket models: turns a DeviceSpec or
/// SocketSpec into live vkernel drivers. The interpreter enforces exactly
/// the validation logic the rendered source describes (same command
/// matching, same copy sizes, same checks, same bugs), so source analysis
/// and runtime behaviour cannot diverge.

#ifndef KERNELGPT_DRIVERS_MODEL_RUNTIME_H_
#define KERNELGPT_DRIVERS_MODEL_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "drivers/driver_model.h"
#include "vkernel/model.h"

namespace kernelgpt::drivers {

/// Legacy hash-scattered coverage block id for a (module, role, detail,
/// index) tuple. Every component is hashed, so one module's blocks land
/// on unrelated coverage pages. Kept as the fallback for tuples outside
/// any spec's BlockLayout; new code should resolve ids through a layout.
uint64_t BlockId(const std::string& module, const std::string& role,
                 const std::string& detail, uint32_t index);

/// Dense per-module block-id layout (PR 9). Walks a spec in the
/// canonical runtime-build order, assigning each (role, detail, index)
/// tuple a sequential local index, so a module's blocks pack into
/// contiguous `MakeBlockId` coverage pages — the layout the two-level
/// bitmap was designed for. The runtime and the experiment harness both
/// resolve ids through the same layout, so they cannot diverge; the walk
/// is pure spec order, so ids are stable across runs and processes and
/// the determinism suites keep byte-identical reports.
class BlockLayout {
 public:
  BlockLayout() = default;

  /// Layout of a device spec: open block, then each handler's commands
  /// (dispatch, checks, deep path) in declaration order.
  static BlockLayout ForDevice(const DeviceSpec& dev);

  /// Layout of a socket spec: create block, ioctls, sockopt
  /// pseudo-commands (set then get), then the socket-level ops.
  static BlockLayout ForSocket(const SocketSpec& sock);

  /// Dense id of a (role, detail, index) tuple. Tuples the spec walk
  /// never assigned fall back to the legacy hash-scattered BlockId.
  uint64_t IdOf(const std::string& role, const std::string& detail,
                uint32_t index) const;

  /// Appends one tuple after the canonical walk, for runtimes with
  /// behaviour beyond the declarative spec (the vnet stack claims its
  /// TCP state transitions this way). Call order defines the local
  /// index, so extenders must claim tuples in one fixed order.
  void Extend(const std::string& role, const std::string& detail,
              uint32_t index) {
    Assign(role, detail, index);
  }

  /// Number of distinct blocks the module can produce.
  size_t BlockCount() const { return next_; }

 private:
  explicit BlockLayout(const std::string& module);

  /// Records the next walk tuple (first assignment wins, matching the
  /// legacy hash semantics where identical tuples shared one id).
  void Assign(const std::string& role, const std::string& detail,
              uint32_t index);

  std::string module_;
  uint64_t base_ = 0;  ///< StableHash(module): the MakeBlockId namespace.
  std::unordered_map<std::string, uint32_t> slots_;
  uint32_t next_ = 0;
};

/// Total number of distinct coverage blocks a device can produce — used
/// by tests to bound observed coverage.
size_t MaxBlocksOf(const DeviceSpec& dev);

/// Creates a virtual-kernel driver interpreting `dev`. The spec must
/// outlive the kernel (corpus specs are stored in a registry).
std::unique_ptr<vkernel::DeviceDriver> MakeModelDevice(const DeviceSpec* dev);

/// Creates a virtual-kernel socket family interpreting `sock`.
std::unique_ptr<vkernel::SocketFamily> MakeModelSocketFamily(
    const SocketSpec* sock);

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_MODEL_RUNTIME_H_
