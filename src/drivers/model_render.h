/// \file
/// Renders a DeviceSpec or SocketSpec to kernel-style C source text. The
/// rendered source is what the extractor, the rule-based baseline, and the
/// simulated analysis LLM see; it reproduces the implementation idioms the
/// paper enumerates (misc .name vs .nodename registration, direct vs
/// _IOC_NR-modified vs table-lookup dispatch, delegated handlers, nested
/// structs with len-of semantics, doc comments).

#ifndef KERNELGPT_DRIVERS_MODEL_RENDER_H_
#define KERNELGPT_DRIVERS_MODEL_RENDER_H_

#include <string>

#include "drivers/driver_model.h"

namespace kernelgpt::drivers {

/// Renders the full C source file of a device driver.
std::string RenderDeviceSource(const DeviceSpec& dev);

/// Renders the full C source file of a socket family.
std::string RenderSocketSource(const SocketSpec& sock);

/// Name of the macro holding a command's sequence number, e.g.
/// "DM_LIST_DEVICES_NR".
std::string NrMacroName(const IoctlSpec& cmd);

/// Name of the rendered per-command helper function.
std::string SubFunctionName(const DeviceSpec& dev, const HandlerSpec& handler,
                            const IoctlSpec& cmd);

/// Name of the dispatch function of a handler (the one containing the
/// switch / table lookup).
std::string DispatchFunctionName(const DeviceSpec& dev,
                                 const HandlerSpec& handler);

/// Name of the outermost (registered) ioctl function of a handler.
std::string RegisteredFunctionName(const DeviceSpec& dev,
                                   const HandlerSpec& handler);

/// Name of the file_operations variable of a handler.
std::string FopsVarName(const DeviceSpec& dev, const HandlerSpec& handler);

/// C scalar type name for a field width ("__u8".."__u64").
std::string CScalarName(int bits);

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_MODEL_RENDER_H_
