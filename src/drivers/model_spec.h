/// \file
/// Ground-truth specification generation from driver/socket models, plus
/// derivation of the partial hand-written "existing Syzkaller" specs used
/// as the paper's Syzkaller baseline.

#ifndef KERNELGPT_DRIVERS_MODEL_SPEC_H_
#define KERNELGPT_DRIVERS_MODEL_SPEC_H_

#include "drivers/driver_model.h"
#include "syzlang/ast.h"

namespace kernelgpt::drivers {

/// Name of the fd resource of a device, e.g. "fd_dm".
std::string DeviceResourceName(const DeviceSpec& dev);

/// Name of the fd resource of a secondary handler, e.g. "fd_kvm_vm".
std::string HandlerResourceName(const DeviceSpec& dev,
                                const HandlerSpec& handler);

/// Name of the socket resource, e.g. "sock_rds".
std::string SocketResourceName(const SocketSpec& sock);

/// The complete, semantically correct specification for a device — what a
/// kernel expert would write. Serves as the oracle for the §5.1.3 audit
/// and as the basis of the "existing Syzkaller" subset.
syzlang::SpecFile GroundTruthDeviceSpec(const DeviceSpec& dev);

/// The complete, correct specification for a socket family.
syzlang::SpecFile GroundTruthSocketSpec(const SocketSpec& sock);

/// The partial hand-written spec Syzkaller ships for this device: a
/// deterministic subset of the ground truth containing openat plus
/// ceil(existing_fraction * n) ioctls (always semantically correct, since
/// humans wrote them). Returns an empty spec when existing_fraction == 0.
syzlang::SpecFile ExistingDeviceSpec(const DeviceSpec& dev);

/// The partial hand-written spec for a socket family.
syzlang::SpecFile ExistingSocketSpec(const SocketSpec& sock);

/// Number of syscall descriptions in the ground truth of a device.
size_t GroundTruthSyscallCount(const DeviceSpec& dev);

/// Number of syscall descriptions in the ground truth of a socket.
size_t GroundTruthSyscallCount(const SocketSpec& sock);

}  // namespace kernelgpt::drivers

#endif  // KERNELGPT_DRIVERS_MODEL_SPEC_H_
