#include "drivers/driver_model.h"

#include "ksrc/cparser.h"
#include "util/status.h"

namespace kernelgpt::drivers {

// -- FieldSpec factories -----------------------------------------------------

FieldSpec
FieldSpec::Scalar(std::string name, int bits, std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kScalar;
  f.bits = bits;
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::Array(std::string name, int elem_bits, uint64_t len,
                 std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kArray;
  f.bits = elem_bits;
  f.array_len = len;
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::FlexArray(std::string name, int elem_bits, std::string comment)
{
  FieldSpec f = Array(std::move(name), elem_bits, 0, std::move(comment));
  return f;
}

FieldSpec
FieldSpec::CString(std::string name, uint64_t len, std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kString;
  f.bits = 8;
  f.array_len = len;
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::Struct(std::string name, std::string struct_name,
                  std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kStructRef;
  f.struct_ref = std::move(struct_name);
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::LenOf(std::string name, std::string target, int bits,
                 std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kLenOf;
  f.bits = bits;
  f.len_of = std::move(target);
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::Flags(std::string name, std::string flag_set, int bits,
                 std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kFlags;
  f.bits = bits;
  f.flags_ref = std::move(flag_set);
  f.comment = std::move(comment);
  return f;
}

FieldSpec
FieldSpec::Out(std::string name, int bits, std::string comment)
{
  FieldSpec f;
  f.name = std::move(name);
  f.kind = Kind::kOutValue;
  f.bits = bits;
  f.comment = std::move(comment);
  return f;
}

// -- CheckSpec factories -----------------------------------------------------

CheckSpec
CheckSpec::Range(std::string field, int64_t min, int64_t max)
{
  CheckSpec c;
  c.field = std::move(field);
  c.kind = Kind::kRange;
  c.min = min;
  c.max = max;
  return c;
}

CheckSpec
CheckSpec::Equals(std::string field, uint64_t value)
{
  CheckSpec c;
  c.field = std::move(field);
  c.kind = Kind::kEquals;
  c.value = value;
  return c;
}

CheckSpec
CheckSpec::NonZero(std::string field)
{
  CheckSpec c;
  c.field = std::move(field);
  c.kind = Kind::kNonZero;
  return c;
}

CheckSpec
CheckSpec::LenBound(std::string field)
{
  CheckSpec c;
  c.field = std::move(field);
  c.kind = Kind::kLenBound;
  return c;
}

// -- Lookups -------------------------------------------------------------

const FieldSpec*
StructSpec::FindField(const std::string& field_name) const
{
  for (const auto& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

const StructSpec*
DeviceSpec::FindStruct(const std::string& name) const
{
  for (const auto& s : structs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HandlerSpec*
DeviceSpec::FindHandler(const std::string& name) const
{
  if (primary.name == name) return &primary;
  for (const auto& h : secondary) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const StructSpec*
SocketSpec::FindStruct(const std::string& name) const
{
  for (const auto& s : structs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// -- Layout ---------------------------------------------------------------

const FieldLayout*
StructLayout::Find(const std::string& field_name) const
{
  for (const auto& fl : fields) {
    if (fl.field && fl.field->name == field_name) return &fl;
  }
  return nullptr;
}

namespace {

size_t
FieldByteSize(const FieldSpec& f, const std::vector<StructSpec>& all)
{
  switch (f.kind) {
    case FieldSpec::Kind::kScalar:
    case FieldSpec::Kind::kLenOf:
    case FieldSpec::Kind::kFlags:
    case FieldSpec::Kind::kOutValue:
      return static_cast<size_t>(f.bits) / 8;
    case FieldSpec::Kind::kArray:
    case FieldSpec::Kind::kString:
      return static_cast<size_t>(f.bits) / 8 *
             static_cast<size_t>(f.array_len);
    case FieldSpec::Kind::kStructRef:
      return StructByteSize(f.struct_ref, all);
  }
  return 0;
}

}  // namespace

StructLayout
ComputeLayout(const StructSpec& s, const std::vector<StructSpec>& all)
{
  StructLayout layout;
  size_t offset = 0;
  size_t max_arm = 0;
  for (const auto& f : s.fields) {
    FieldLayout fl;
    fl.field = &f;
    fl.size = FieldByteSize(f, all);
    fl.offset = s.is_union ? 0 : offset;
    layout.fields.push_back(fl);
    if (s.is_union) {
      max_arm = std::max(max_arm, fl.size);
    } else {
      offset += fl.size;
    }
  }
  layout.total_size = s.is_union ? max_arm : offset;
  return layout;
}

size_t
StructByteSize(const std::string& name, const std::vector<StructSpec>& all)
{
  for (const auto& s : all) {
    if (s.name == name) return ComputeLayout(s, all).total_size;
  }
  return 0;
}

uint64_t
FullCommandValue(const DeviceSpec& dev, const IoctlSpec& cmd)
{
  uint64_t size = 0;
  if (!cmd.arg_struct.empty()) {
    size = StructByteSize(cmd.arg_struct, dev.structs);
  }
  char r = (cmd.ioc_dir == 'r' || cmd.ioc_dir == 'b') ? 'r' : '-';
  char w = (cmd.ioc_dir == 'w' || cmd.ioc_dir == 'b') ? 'w' : '-';
  if (cmd.ioc_dir == 'n') {
    r = '-';
    w = '-';
    size = 0;
  }
  return ksrc::IoctlNumber(r, w, dev.magic, cmd.nr, size);
}

uint64_t
SocketConstValue(const std::string& macro)
{
  // AF_* values follow Linux's include/linux/socket.h where applicable;
  // synthetic families use the 40+ range.
  if (macro == "AF_PACKET") return 17;
  if (macro == "AF_RDS") return 21;
  if (macro == "AF_LLC") return 26;
  if (macro == "AF_BLUETOOTH") return 31;
  if (macro == "AF_CAIF") return 37;
  if (macro == "AF_PHONET") return 35;
  if (macro == "AF_INET") return 2;
  if (macro == "AF_INET6") return 10;
  if (macro == "AF_PPPOX") return 24;
  if (macro == "SOCK_STREAM") return 1;
  if (macro == "SOCK_DGRAM") return 2;
  if (macro == "SOCK_RAW") return 3;
  if (macro == "SOCK_SEQPACKET") return 5;
  if (macro == "SOL_SOCKET") return 1;
  if (macro == "SOL_RDS") return 276;
  if (macro == "SOL_LLC") return 268;
  if (macro == "SOL_PACKET") return 263;
  if (macro == "SOL_CAIF") return 278;
  if (macro == "SOL_BLUETOOTH") return 274;
  if (macro == "SOL_PNPIPE") return 275;
  if (macro == "SOL_TCP") return 6;
  if (macro == "SOL_UDP") return 17;
  if (macro == "SOL_MPTCP") return 284;
  if (macro == "SOL_IPV6") return 41;
  if (macro == "SOL_PPPOL2TP") return 273;
  util::Panic("unknown socket constant macro: " + macro);
}

}  // namespace kernelgpt::drivers
