#include "drivers/corpus.h"

/// \file
/// Hand-written device models for the modules the paper discusses
/// specifically. Each carries the idioms and the Table 4 bugs the paper
/// attributes to it.

namespace kernelgpt::drivers {

namespace {

BugSpec
Bug(std::string title, std::string cve, bool confirmed, bool fixed,
    BugSpec::Trigger trigger, std::string field = "", uint64_t value = 0,
    std::string prior = "")
{
  BugSpec b;
  b.title = std::move(title);
  b.cve = std::move(cve);
  b.confirmed = confirmed;
  b.fixed = fixed;
  b.trigger = trigger;
  b.field = std::move(field);
  b.value = value;
  b.prior_cmd = std::move(prior);
  return b;
}

IoctlSpec
Cmd(std::string macro, uint64_t nr, char dir, std::string arg_struct,
    syzlang::Dir ptr_dir, std::vector<CheckSpec> checks, int deep,
    std::string comment = "")
{
  IoctlSpec c;
  c.macro = std::move(macro);
  c.nr = nr;
  c.ioc_dir = dir;
  c.arg_struct = std::move(arg_struct);
  c.dir = ptr_dir;
  c.checks = std::move(checks);
  c.deep_blocks = deep;
  c.comment = std::move(comment);
  return c;
}

using syzlang::Dir;

}  // namespace

DeviceSpec
MakeDeviceMapper()
{
  DeviceSpec dev;
  dev.id = "dm";
  dev.display_name = "device-mapper";
  dev.dev_node = "/dev/mapper/control";
  dev.magic = 0xfd;
  dev.magic_macro = "DM_IOCTL";
  dev.reg = RegistrationStyle::kMiscNodename;  // The Fig. 2 idiom.
  dev.dispatch = DispatchStyle::kIocNrSwitch;  // cmd = _IOC_NR(command).
  dev.delegation_depth = 2;                    // dm_ctl_ioctl -> ctl_ioctl.
  dev.existing_fraction = 0.0;  // Paper: Syzkaller has no dm descriptions.
  dev.primary.name = "ctl";
  dev.extra_macros = {{"DM_NAME_LEN", 128}, {"DM_MAX_TARGETS", 256}};

  StructSpec ioc;
  ioc.name = "dm_ioctl";
  ioc.comment = "control block for all device-mapper ioctls";
  ioc.fields = {
      FieldSpec::Array("version", 32, 3, "major/minor/patch of the ABI"),
      FieldSpec::Scalar("data_size", 32, "total size of data passed in"),
      FieldSpec::Scalar("data_start", 32, "offset to start of data"),
      FieldSpec::Scalar("target_count", 32, "number of targets in table"),
      FieldSpec::Scalar("open_count", 32, "out: reference count"),
      FieldSpec::Flags("flags", "dm_ioctl_flags", 32, "operation flags"),
      FieldSpec::Out("event_nr", 32, "kernel-assigned event counter"),
      FieldSpec::Scalar("dev", 64, "device number"),
      FieldSpec::CString("name", 128, "device name"),
      FieldSpec::CString("uuid", 129, "unique identifier"),
  };
  dev.structs.push_back(std::move(ioc));

  StructSpec target;
  target.name = "dm_target_spec";
  target.comment = "one mapping target within a table load";
  target.fields = {
      FieldSpec::Scalar("sector_start", 64),
      FieldSpec::Scalar("length", 64, "length of this mapping in sectors"),
      FieldSpec::Scalar("status", 32),
      FieldSpec::Scalar("next", 32, "offset to the next target spec"),
      FieldSpec::CString("target_type", 16, "e.g. \"linear\", \"crypt\""),
  };
  dev.structs.push_back(std::move(target));

  dev.flag_sets.push_back(
      {"dm_ioctl_flags",
       {{"DM_READONLY_FLAG", 1},
        {"DM_SUSPEND_FLAG", 2},
        {"DM_PERSISTENT_DEV_FLAG", 8},
        {"DM_STATUS_TABLE_FLAG", 16}}});

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("DM_VERSION", 0, 'b', "dm_ioctl", Dir::kInOut, {}, 2,
                   "report the driver version"));
  io.push_back(Cmd("DM_REMOVE_ALL", 1, 'b', "dm_ioctl", Dir::kInOut, {}, 3,
                   "remove all devices"));
  io.push_back(Cmd("DM_LIST_DEVICES", 3, 'b', "dm_ioctl", Dir::kInOut, {}, 5,
                   "list all mapped device names"));
  io.push_back(Cmd("DM_DEV_CREATE", 4, 'b', "dm_ioctl", Dir::kInOut, {}, 4,
                   "create a new mapped device"));
  io.push_back(Cmd("DM_DEV_REMOVE", 5, 'b', "dm_ioctl", Dir::kInOut, {}, 3,
                   "remove a mapped device"));

  IoctlSpec suspend = Cmd("DM_DEV_SUSPEND", 6, 'b', "dm_ioctl", Dir::kInOut,
                          {}, 4, "suspend or resume a mapped device");
  suspend.bug =
      Bug("general protection fault in cleanup_mapped_device",
          "CVE-2024-50277", true, true, BugSpec::Trigger::kOnRelease);
  io.push_back(std::move(suspend));

  IoctlSpec load =
      Cmd("DM_TABLE_LOAD", 9, 'w', "dm_ioctl", Dir::kIn,
          {CheckSpec::NonZero("dev")}, 5, "load a table description");
  // Allocation sized by target_count with no upper-bound check.
  load.bug = Bug("kmalloc bug in dm_table_create", "CVE-2023-52429", true,
                 true, BugSpec::Trigger::kFieldAtLeast, "target_count",
                 0x10000);
  io.push_back(std::move(load));

  IoctlSpec status = Cmd("DM_TABLE_STATUS", 12, 'b', "dm_ioctl", Dir::kInOut,
                         {}, 5, "return the status of a loaded table");
  // kvmalloc(param.data_size) without a size check — Linus-confirmed bug.
  status.bug = Bug("kmalloc bug in ctl_ioctl", "CVE-2024-23851", true, true,
                   BugSpec::Trigger::kFieldAtLeast, "data_size", 0x4000000);
  io.push_back(std::move(status));

  return dev;
}

DeviceSpec
MakeCec()
{
  DeviceSpec dev;
  dev.id = "cec";
  dev.display_name = "cec";
  dev.dev_node = "/dev/cec0";
  dev.magic = 0x61;  // 'a'
  dev.magic_macro = "CEC_MAGIC";
  dev.reg = RegistrationStyle::kDeviceCreate;  // device_create "cec%d".
  dev.dispatch = DispatchStyle::kIocNrSwitch;
  dev.delegation_depth = 2;
  dev.existing_fraction = 0.0;  // Undescribed in Syzkaller (Table 4).
  dev.primary.name = "adap";

  StructSpec caps;
  caps.name = "cec_caps";
  caps.comment = "adapter capabilities returned by CEC_ADAP_G_CAPS";
  caps.fields = {
      FieldSpec::CString("driver", 32, "name of the cec adapter driver"),
      FieldSpec::CString("name", 32, "name of this specific cec adapter"),
      FieldSpec::Scalar("available_log_addrs", 32),
      FieldSpec::Scalar("capabilities", 32),
      FieldSpec::Scalar("version", 32),
  };
  dev.structs.push_back(std::move(caps));

  StructSpec log_addrs;
  log_addrs.name = "cec_log_addrs";
  log_addrs.comment = "logical address configuration";
  log_addrs.fields = {
      FieldSpec::Array("log_addr", 8, 4, "the claimed logical addresses"),
      FieldSpec::Scalar("log_addr_mask", 16),
      FieldSpec::Scalar("cec_version", 8),
      FieldSpec::LenOf("num_log_addrs", "log_addr", 8,
                       "how many logical addresses to claim"),
      FieldSpec::Scalar("vendor_id", 32),
      FieldSpec::Flags("flags", "cec_log_addrs_flags", 32),
      FieldSpec::CString("osd_name", 15, "display name"),
  };
  dev.structs.push_back(std::move(log_addrs));

  StructSpec msg;
  msg.name = "cec_msg";
  msg.comment = "a CEC message to transmit or receive";
  msg.fields = {
      FieldSpec::Scalar("tx_ts", 64, "out: timestamp of transmit"),
      FieldSpec::Scalar("rx_ts", 64, "out: timestamp of receive"),
      FieldSpec::LenOf("len", "msg", 32, "length of the message payload"),
      FieldSpec::Scalar("timeout", 32, "reply timeout in milliseconds"),
      FieldSpec::Out("sequence", 32, "kernel-assigned sequence number"),
      FieldSpec::Flags("flags", "cec_log_addrs_flags", 32),
      FieldSpec::Array("msg", 8, 16, "payload bytes"),
      FieldSpec::Scalar("reply", 8),
      FieldSpec::Scalar("rx_status", 8),
      FieldSpec::Scalar("tx_status", 8),
  };
  dev.structs.push_back(std::move(msg));

  StructSpec mode;
  mode.name = "cec_mode";
  mode.fields = {
      FieldSpec::Scalar("initiator", 32),
      FieldSpec::Scalar("follower", 32),
  };
  dev.structs.push_back(std::move(mode));

  dev.flag_sets.push_back(
      {"cec_log_addrs_flags",
       {{"CEC_LOG_ADDRS_FL_ALLOW_UNREG_FALLBACK", 1},
        {"CEC_LOG_ADDRS_FL_ALLOW_RC_PASSTHRU", 2},
        {"CEC_LOG_ADDRS_FL_CDC_ONLY", 4}}});

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("CEC_ADAP_G_CAPS", 0, 'b', "cec_caps", Dir::kInOut, {}, 3,
                   "query adapter capabilities"));

  IoctlSpec slog = Cmd("CEC_ADAP_S_LOG_ADDRS", 1, 'b', "cec_log_addrs",
                       Dir::kInOut,
                       {CheckSpec::Range("num_log_addrs", 0, 4)}, 5,
                       "claim logical addresses on the bus");
  slog.bug = Bug("INFO: task hung in cec_claim_log_addrs", "", true, false,
                 BugSpec::Trigger::kFieldAtLeast, "vendor_id", 0xf0000000);
  io.push_back(std::move(slog));

  io.push_back(Cmd("CEC_ADAP_G_PHYS_ADDR", 2, 'r', "cec_mode", Dir::kOut, {},
                   2, "query the physical address"));

  IoctlSpec sphys = Cmd("CEC_ADAP_S_PHYS_ADDR", 3, 'w', "cec_mode", Dir::kIn,
                        {CheckSpec::Range("initiator", 0, 15)}, 3,
                        "set the physical address");
  sphys.bug = Bug("general protection fault in cec_transmit_done_ts", "",
                  true, true, BugSpec::Trigger::kOnRelease);
  io.push_back(std::move(sphys));

  IoctlSpec transmit = Cmd("CEC_TRANSMIT", 5, 'b', "cec_msg", Dir::kInOut,
                           {CheckSpec::LenBound("len")}, 6,
                           "transmit a message on the bus");
  transmit.bug = Bug("ODEBUG bug in cec_transmit_msg_fh", "", true, true,
                     BugSpec::Trigger::kFieldZero, "timeout");
  io.push_back(std::move(transmit));

  IoctlSpec receive = Cmd("CEC_RECEIVE", 6, 'b', "cec_msg", Dir::kInOut,
                          {CheckSpec::LenBound("len")}, 5,
                          "dequeue a received message");
  receive.bug = Bug("KASAN: slab-use-after-free Read in cec_queue_msg_fh",
                    "CVE-2024-23848", true, true,
                    BugSpec::Trigger::kSequence, "", 0, "CEC_TRANSMIT");
  io.push_back(std::move(receive));

  IoctlSpec dqevent = Cmd("CEC_DQEVENT", 7, 'b', "cec_mode", Dir::kInOut, {},
                          4, "dequeue a pending event");
  dqevent.bug = Bug("WARNING in cec_data_cancel", "", true, true,
                    BugSpec::Trigger::kSequence, "", 0,
                    "CEC_ADAP_S_LOG_ADDRS");
  io.push_back(std::move(dqevent));

  io.push_back(Cmd("CEC_G_MODE", 8, 'r', "cec_mode", Dir::kOut, {}, 2,
                   "query initiator/follower modes"));
  io.push_back(Cmd("CEC_S_MODE", 9, 'w', "cec_mode", Dir::kIn,
                   {CheckSpec::Range("initiator", 0, 3),
                    CheckSpec::Range("follower", 0, 7)},
                   3, "set initiator/follower modes"));
  return dev;
}

DeviceSpec
MakeKvm()
{
  DeviceSpec dev;
  dev.id = "kvm";
  dev.display_name = "kvm";
  dev.dev_node = "/dev/kvm";
  dev.magic = 0xae;
  dev.magic_macro = "KVMIO";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kDirectSwitch;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.55;
  dev.primary.name = "dev";

  StructSpec region;
  region.name = "kvm_userspace_memory_region";
  region.comment = "maps guest physical memory to userspace memory";
  region.fields = {
      FieldSpec::Scalar("slot", 32, "memory slot index"),
      FieldSpec::Flags("flags", "kvm_mem_flags", 32),
      FieldSpec::Scalar("guest_phys_addr", 64),
      FieldSpec::Scalar("memory_size", 64, "bytes"),
      FieldSpec::Scalar("userspace_addr", 64,
                        "start of the userspace allocated memory"),
  };
  dev.structs.push_back(std::move(region));

  StructSpec regs;
  regs.name = "kvm_regs";
  regs.comment = "general purpose register state";
  regs.fields = {
      FieldSpec::Scalar("rax", 64), FieldSpec::Scalar("rbx", 64),
      FieldSpec::Scalar("rcx", 64), FieldSpec::Scalar("rdx", 64),
      FieldSpec::Scalar("rsi", 64), FieldSpec::Scalar("rdi", 64),
      FieldSpec::Scalar("rsp", 64), FieldSpec::Scalar("rbp", 64),
      FieldSpec::Scalar("rip", 64), FieldSpec::Scalar("rflags", 64),
  };
  dev.structs.push_back(std::move(regs));

  StructSpec irq;
  irq.name = "kvm_irq_level";
  irq.fields = {
      FieldSpec::Scalar("irq", 32, "irq line number"),
      FieldSpec::Scalar("level", 32, "0 or 1"),
  };
  dev.structs.push_back(std::move(irq));

  StructSpec dirty;
  dirty.name = "kvm_dirty_log";
  dirty.fields = {
      FieldSpec::Scalar("slot", 32),
      FieldSpec::Scalar("padding", 32, "must be zero"),
      FieldSpec::Scalar("dirty_bitmap", 64, "userspace bitmap address"),
  };
  dev.structs.push_back(std::move(dirty));

  StructSpec cpuid;
  cpuid.name = "kvm_cpuid_entry";
  cpuid.fields = {
      FieldSpec::Scalar("function", 32), FieldSpec::Scalar("index", 32),
      FieldSpec::Scalar("eax", 32),      FieldSpec::Scalar("ebx", 32),
      FieldSpec::Scalar("ecx", 32),      FieldSpec::Scalar("edx", 32),
  };
  dev.structs.push_back(std::move(cpuid));

  StructSpec cpuid_hdr;
  cpuid_hdr.name = "kvm_cpuid";
  cpuid_hdr.comment = "variable-size cpuid table";
  cpuid_hdr.fields = {
      FieldSpec::LenOf("nent", "entries", 32, "number of entries"),
      FieldSpec::Scalar("padding", 32),
      FieldSpec::Array("entries", 32, 8, "cpuid entries (flattened)"),
  };
  dev.structs.push_back(std::move(cpuid_hdr));

  dev.flag_sets.push_back({"kvm_mem_flags",
                           {{"KVM_MEM_LOG_DIRTY_PAGES", 1},
                            {"KVM_MEM_READONLY", 2}}});

  // /dev/kvm system handler.
  auto& sys = dev.primary.ioctls;
  sys.push_back(Cmd("KVM_GET_API_VERSION", 0, 'n', "", Dir::kIn, {}, 1,
                    "returns the KVM API version"));
  IoctlSpec create_vm = Cmd("KVM_CREATE_VM", 1, 'n', "", Dir::kIn, {}, 2,
                            "create a VM and return its control fd");
  create_vm.creates_handler = "vm";
  sys.push_back(std::move(create_vm));
  sys.push_back(Cmd("KVM_CHECK_EXTENSION", 3, 'n', "", Dir::kIn, {}, 1,
                    "query one capability"));
  sys.push_back(Cmd("KVM_GET_VCPU_MMAP_SIZE", 4, 'n', "", Dir::kIn, {}, 1,
                    "size of the shared vcpu run area"));

  // VM handler (reached through KVM_CREATE_VM) — the dependency the paper
  // credits for the 42% coverage gain on kvm.
  HandlerSpec vm;
  vm.name = "vm";
  IoctlSpec create_vcpu = Cmd("KVM_CREATE_VCPU", 0x41, 'n', "", Dir::kIn, {},
                              2, "create a vcpu for this VM");
  create_vcpu.creates_handler = "vcpu";
  vm.ioctls.push_back(std::move(create_vcpu));
  vm.ioctls.push_back(Cmd("KVM_SET_USER_MEMORY_REGION", 0x46, 'w',
                          "kvm_userspace_memory_region", Dir::kIn,
                          {CheckSpec::Range("slot", 0, 31),
                           CheckSpec::NonZero("memory_size")},
                          6, "install one guest memory slot"));
  vm.ioctls.push_back(Cmd("KVM_GET_DIRTY_LOG", 0x42, 'w', "kvm_dirty_log",
                          Dir::kIn,
                          {CheckSpec::Range("slot", 0, 31),
                           CheckSpec::Equals("padding", 0)},
                          4, "read the dirty page bitmap of a slot"));
  vm.ioctls.push_back(Cmd("KVM_IRQ_LINE", 0x61, 'w', "kvm_irq_level",
                          Dir::kIn, {CheckSpec::Range("irq", 0, 23)}, 4,
                          "assert or deassert an irq line"));
  vm.ioctls.push_back(Cmd("KVM_CREATE_IRQCHIP", 0x60, 'n', "", Dir::kIn, {},
                          3, "create the in-kernel interrupt controller"));
  dev.secondary.push_back(std::move(vm));

  // VCPU handler.
  HandlerSpec vcpu;
  vcpu.name = "vcpu";
  vcpu.ioctls.push_back(
      Cmd("KVM_RUN", 0x80, 'n', "", Dir::kIn, {}, 8, "enter the guest"));
  vcpu.ioctls.push_back(Cmd("KVM_GET_REGS", 0x81, 'r', "kvm_regs", Dir::kOut,
                            {}, 3, "read the register file"));
  vcpu.ioctls.push_back(Cmd("KVM_SET_REGS", 0x82, 'w', "kvm_regs", Dir::kIn,
                            {}, 3, "write the register file"));
  vcpu.ioctls.push_back(Cmd("KVM_SET_CPUID", 0x8a, 'w', "kvm_cpuid", Dir::kIn,
                            {CheckSpec::LenBound("nent")}, 5,
                            "configure guest cpuid"));
  dev.secondary.push_back(std::move(vcpu));
  return dev;
}

DeviceSpec
MakeBtrfsControl()
{
  DeviceSpec dev;
  dev.id = "btrfs_control";
  dev.display_name = "btrfs-control";
  dev.dev_node = "/dev/btrfs-control";
  dev.magic = 0x94;
  dev.magic_macro = "BTRFS_IOCTL_MAGIC";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kIocNrSwitch;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.2;  // Table 5: Syzkaller describes 1 of 5.
  dev.primary.name = "ctl";

  StructSpec vol;
  vol.name = "btrfs_ioctl_vol_args";
  vol.comment = "device path argument for scan/forget";
  vol.fields = {
      FieldSpec::Scalar("fd", 64),
      FieldSpec::CString("name", 88, "device path"),
  };
  dev.structs.push_back(std::move(vol));

  StructSpec snap;
  snap.name = "btrfs_snap_args";
  snap.comment = "snapshot creation request";
  snap.fields = {
      FieldSpec::Scalar("objectid", 64, "root objectid to snapshot"),
      FieldSpec::Scalar("offset", 64),
      FieldSpec::Scalar("flags", 64),
      FieldSpec::CString("name", 64, "snapshot name"),
  };
  dev.structs.push_back(std::move(snap));

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("BTRFS_IOC_SCAN_DEV", 1, 'w', "btrfs_ioctl_vol_args",
                   Dir::kIn, {}, 4, "scan a device for btrfs filesystems"));
  io.push_back(Cmd("BTRFS_IOC_FORGET_DEV", 5, 'w', "btrfs_ioctl_vol_args",
                   Dir::kIn, {}, 3, "forget a previously scanned device"));
  io.push_back(Cmd("BTRFS_IOC_GET_SUPPORTED_FEATURES", 57, 'r',
                   "btrfs_ioctl_vol_args", Dir::kOut, {}, 2,
                   "report supported feature bits"));

  IoctlSpec snapc = Cmd("BTRFS_IOC_SNAP_CREATE", 2, 'w', "btrfs_snap_args",
                        Dir::kIn, {}, 5, "create a snapshot of a subvolume");
  snapc.bug = Bug("kernel BUG in btrfs_get_root_ref", "CVE-2024-23850", true,
                  true, BugSpec::Trigger::kFieldZero, "objectid");
  io.push_back(std::move(snapc));

  IoctlSpec reloc = Cmd("BTRFS_IOC_BALANCE_CTL", 33, 'w', "btrfs_snap_args",
                        Dir::kIn, {}, 4, "control a running balance");
  reloc.bug =
      Bug("general protection fault in btrfs_update_reloc_root", "", true,
          false, BugSpec::Trigger::kSequence, "", 0, "BTRFS_IOC_SNAP_CREATE");
  io.push_back(std::move(reloc));
  return dev;
}

DeviceSpec
MakeUbi()
{
  DeviceSpec dev;
  dev.id = "ubi";
  dev.display_name = "ubi";
  dev.dev_node = "/dev/ubi_ctrl";
  dev.magic = 0x6f;
  dev.magic_macro = "UBI_CTRL_IOC_MAGIC";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kTableLookup;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.0;
  dev.primary.name = "ctl";

  StructSpec attach;
  attach.name = "ubi_attach_req";
  attach.comment = "attach an MTD device to UBI";
  attach.fields = {
      FieldSpec::Scalar("ubi_num", 32, "UBI device number to assign"),
      FieldSpec::Scalar("mtd_num", 32, "MTD device number to attach"),
      FieldSpec::Scalar("vid_hdr_offset", 32,
                        "VID header offset; 0 means default"),
      FieldSpec::Scalar("max_beb_per1024", 16),
      FieldSpec::Array("padding", 8, 10, "reserved, must be zero"),
  };
  dev.structs.push_back(std::move(attach));

  StructSpec vol;
  vol.name = "ubi_mkvol_req";
  vol.comment = "create a UBI volume";
  vol.fields = {
      FieldSpec::Scalar("vol_id", 32),
      FieldSpec::Scalar("alignment", 32),
      FieldSpec::Scalar("bytes", 64, "volume size in bytes"),
      FieldSpec::Scalar("vol_type", 8),
      FieldSpec::LenOf("name_len", "name", 16),
      FieldSpec::CString("name", 128, "volume name"),
  };
  dev.structs.push_back(std::move(vol));

  auto& io = dev.primary.ioctls;
  IoctlSpec att = Cmd("UBI_IOCATT", 64, 'w', "ubi_attach_req", Dir::kIn,
                      {CheckSpec::Range("ubi_num", 0, 31)}, 5,
                      "attach an MTD device");
  att.bug = Bug("memory leak in ubi_attach", "CVE-2024-25740", true, false,
                BugSpec::Trigger::kFieldAtLeast, "vid_hdr_offset", 0x10000);
  io.push_back(std::move(att));

  io.push_back(Cmd("UBI_IOCDET", 65, 'w', "ubi_attach_req", Dir::kIn,
                   {CheckSpec::Range("ubi_num", 0, 31)}, 3,
                   "detach an MTD device"));

  IoctlSpec mkvol = Cmd("UBI_IOCMKVOL", 66, 'w', "ubi_mkvol_req", Dir::kIn,
                        {CheckSpec::Range("vol_id", 0, 127),
                         CheckSpec::LenBound("name_len")},
                        5, "create a volume");
  mkvol.bug = Bug("zero-size vmalloc in ubi_read_volume_table",
                  "CVE-2024-25739", true, true, BugSpec::Trigger::kFieldZero,
                  "bytes");
  io.push_back(std::move(mkvol));

  io.push_back(Cmd("UBI_IOCRMVOL", 67, 'w', "ubi_mkvol_req", Dir::kIn,
                   {CheckSpec::Range("vol_id", 0, 127)}, 3,
                   "remove a volume"));
  // Resize uses its own request struct (as in the real UBI ABI), so its
  // nonzero-bytes requirement does not leak into mkvol's spec.
  StructSpec rsvol;
  rsvol.name = "ubi_rsvol_req";
  rsvol.comment = "resize a UBI volume";
  rsvol.fields = {
      FieldSpec::Scalar("bytes", 64, "new volume size in bytes"),
      FieldSpec::Scalar("vol_id", 32),
  };
  dev.structs.push_back(std::move(rsvol));
  io.push_back(Cmd("UBI_IOCRSVOL", 68, 'w', "ubi_rsvol_req", Dir::kIn,
                   {CheckSpec::Range("vol_id", 0, 127),
                    CheckSpec::NonZero("bytes")},
                   4, "resize a volume"));
  return dev;
}

DeviceSpec
MakeDvb()
{
  DeviceSpec dev;
  dev.id = "dvb";
  dev.display_name = "dvb-demux";
  dev.dev_node = "/dev/dvb0";
  dev.magic = 0x6f;
  dev.magic_macro = "DMX_MAGIC";
  dev.reg = RegistrationStyle::kDeviceCreate;
  dev.dispatch = DispatchStyle::kIocNrSwitch;
  dev.delegation_depth = 3;  // Deep delegation chain.
  dev.existing_fraction = 0.0;
  dev.primary.name = "dmx";

  StructSpec sct;
  sct.name = "dmx_sct_filter_params";
  sct.comment = "section filter configuration";
  sct.fields = {
      FieldSpec::Scalar("pid", 16, "packet id to filter"),
      FieldSpec::Array("filter", 8, 16, "filter match bytes"),
      FieldSpec::Array("mask", 8, 16, "filter mask bytes"),
      FieldSpec::Scalar("timeout", 32),
      FieldSpec::Flags("flags", "dmx_filter_flags", 32),
  };
  dev.structs.push_back(std::move(sct));

  StructSpec pes;
  pes.name = "dmx_pes_filter_params";
  pes.comment = "PES filter configuration";
  pes.fields = {
      FieldSpec::Scalar("pid", 16),
      FieldSpec::Scalar("input", 32, "dmx_input: frontend or dvr"),
      FieldSpec::Scalar("output", 32),
      FieldSpec::Scalar("pes_type", 32),
      FieldSpec::Flags("flags", "dmx_filter_flags", 32),
  };
  dev.structs.push_back(std::move(pes));

  StructSpec stc;
  stc.name = "dmx_stc";
  stc.fields = {
      FieldSpec::Scalar("num", 32, "input: which STC to read"),
      FieldSpec::Scalar("base", 32),
      FieldSpec::Out("stc", 64, "output: system time counter value"),
  };
  dev.structs.push_back(std::move(stc));

  StructSpec buf;
  buf.name = "dmx_buffer_desc";
  buf.fields = {
      FieldSpec::Scalar("index", 32, "buffer index to export"),
      FieldSpec::Scalar("type", 32),
      FieldSpec::Scalar("plane", 32),
      FieldSpec::Flags("flags", "dmx_filter_flags", 32),
  };
  dev.structs.push_back(std::move(buf));

  StructSpec reqbufs;
  reqbufs.name = "dmx_requestbuffers";
  reqbufs.fields = {
      FieldSpec::Scalar("count", 32, "number of buffers requested"),
      FieldSpec::Scalar("size", 32),
  };
  dev.structs.push_back(std::move(reqbufs));

  dev.flag_sets.push_back({"dmx_filter_flags",
                           {{"DMX_CHECK_CRC", 1},
                            {"DMX_ONESHOT", 2},
                            {"DMX_IMMEDIATE_START", 4}}});

  auto& io = dev.primary.ioctls;
  io.push_back(
      Cmd("DMX_START", 41, 'n', "", Dir::kIn, {}, 2, "start filtering"));
  io.push_back(
      Cmd("DMX_STOP", 42, 'n', "", Dir::kIn, {}, 2, "stop filtering"));
  io.push_back(Cmd("DMX_SET_FILTER", 43, 'w', "dmx_sct_filter_params",
                   Dir::kIn, {CheckSpec::Range("pid", 0, 0x1fff)}, 5,
                   "install a section filter"));

  IoctlSpec pesf = Cmd("DMX_SET_PES_FILTER", 44, 'w', "dmx_pes_filter_params",
                       Dir::kIn,
                       {CheckSpec::Range("pid", 0, 0x1fff),
                        CheckSpec::Range("pes_type", 0, 4)},
                       5, "install a PES filter");
  pesf.bug = Bug("memory leak in dvb_dmxdev_add_pid", "", true, false,
                 BugSpec::Trigger::kSequence, "", 0, "DMX_SET_FILTER");
  io.push_back(std::move(pesf));

  IoctlSpec getstc = Cmd("DMX_GET_STC", 50, 'b', "dmx_stc", Dir::kInOut, {},
                         3, "read the system time counter");
  getstc.bug = Bug("memory leak in dvb_dvr_do_ioctl", "", false, false,
                   BugSpec::Trigger::kAlways);
  io.push_back(std::move(getstc));

  io.push_back(Cmd("DMX_ADD_PID", 51, 'w', "dmx_stc", Dir::kIn, {}, 3,
                   "add a PID to the filter set"));
  io.push_back(Cmd("DMX_REMOVE_PID", 52, 'w', "dmx_stc", Dir::kIn, {}, 3,
                   "remove a PID from the filter set"));

  IoctlSpec expbuf = Cmd("DMX_EXPBUF", 53, 'b', "dmx_buffer_desc",
                         Dir::kInOut, {}, 4, "export a buffer as a dmabuf");
  expbuf.bug = Bug("general protection fault in dvb_vb2_expbuf",
                   "CVE-2024-50291", true, true,
                   BugSpec::Trigger::kFieldAtLeast, "index", 32);
  io.push_back(std::move(expbuf));

  IoctlSpec req = Cmd("DMX_REQBUFS", 54, 'b', "dmx_requestbuffers",
                      Dir::kInOut, {CheckSpec::NonZero("count")}, 4,
                      "allocate streaming buffers");
  req.bug = Bug("possible deadlock in dvb_demux_release", "", false, false,
                BugSpec::Trigger::kOnRelease);
  io.push_back(std::move(req));
  return dev;
}

DeviceSpec
MakeUvc()
{
  DeviceSpec dev;
  dev.id = "uvc";
  dev.display_name = "uvc-video";
  dev.dev_node = "/dev/video0";
  dev.magic = 0x56;  // 'V'
  dev.magic_macro = "VIDIOC_MAGIC";
  dev.reg = RegistrationStyle::kDeviceCreate;
  dev.dispatch = DispatchStyle::kIocNrSwitch;
  dev.delegation_depth = 2;
  dev.existing_fraction = 0.0;
  dev.primary.name = "video";

  StructSpec cap;
  cap.name = "v4l2_capability";
  cap.comment = "device capability report";
  cap.fields = {
      FieldSpec::CString("driver", 16),
      FieldSpec::CString("card", 32),
      FieldSpec::Scalar("version", 32),
      FieldSpec::Scalar("capabilities", 32),
  };
  dev.structs.push_back(std::move(cap));

  StructSpec req;
  req.name = "v4l2_requestbuffers";
  req.comment = "buffer allocation request";
  req.fields = {
      FieldSpec::Scalar("count", 32, "number of buffers"),
      FieldSpec::Scalar("type", 32, "stream type"),
      FieldSpec::Scalar("memory", 32, "memory mapping style"),
  };
  dev.structs.push_back(std::move(req));

  StructSpec fmt;
  fmt.name = "v4l2_format";
  fmt.comment = "frame format negotiation";
  fmt.fields = {
      FieldSpec::Scalar("type", 32),
      FieldSpec::Scalar("width", 32),
      FieldSpec::Scalar("height", 32),
      FieldSpec::Scalar("pixelformat", 32, "fourcc code"),
      FieldSpec::Scalar("sizeimage", 32, "bytes per frame"),
      FieldSpec::Scalar("bytesperline", 32),
  };
  dev.structs.push_back(std::move(fmt));

  // The Fig. 5 idiom: a count field tied to a device list.
  StructSpec hotinfo;
  hotinfo.name = "uvc_hot_reset_info";
  hotinfo.comment = "list of devices affected by a hot reset";
  hotinfo.fields = {
      FieldSpec::LenOf("count", "devices", 32,
                       "number of valid entries in devices"),
      FieldSpec::Array("devices", 32, 8, "dependent device ids"),
  };
  dev.structs.push_back(std::move(hotinfo));

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("VIDIOC_QUERYCAP", 0, 'r', "v4l2_capability", Dir::kOut,
                   {}, 2, "query device capabilities"));

  IoctlSpec reqb = Cmd("VIDIOC_REQBUFS", 8, 'b', "v4l2_requestbuffers",
                       Dir::kInOut,
                       {CheckSpec::Range("type", 1, 2),
                        CheckSpec::Range("memory", 1, 3)},
                       5, "allocate streaming buffers");
  reqb.bug = Bug("WARNING in vb2_core_reqbufs", "", true, false,
                 BugSpec::Trigger::kFieldAtLeast, "count", 1024);
  io.push_back(std::move(reqb));

  IoctlSpec sfmt = Cmd("VIDIOC_S_FMT", 5, 'b', "v4l2_format", Dir::kInOut,
                       {CheckSpec::Range("type", 1, 2)}, 5,
                       "set the frame format");
  sfmt.bug = Bug("divide error in uvc_queue_setup", "", true, false,
                 BugSpec::Trigger::kFieldZero, "sizeimage");
  io.push_back(std::move(sfmt));

  io.push_back(Cmd("VIDIOC_G_FMT", 4, 'b', "v4l2_format", Dir::kInOut,
                   {CheckSpec::Range("type", 1, 2)}, 3,
                   "get the current format"));
  io.push_back(Cmd("VIDIOC_STREAMON", 18, 'w', "v4l2_requestbuffers",
                   Dir::kIn, {CheckSpec::Range("type", 1, 2)}, 4,
                   "start streaming"));
  io.push_back(Cmd("VIDIOC_STREAMOFF", 19, 'w', "v4l2_requestbuffers",
                   Dir::kIn, {CheckSpec::Range("type", 1, 2)}, 3,
                   "stop streaming"));
  io.push_back(Cmd("UVCIOC_CTRL_MAP", 32, 'b', "uvc_hot_reset_info",
                   Dir::kInOut, {CheckSpec::LenBound("count")}, 4,
                   "map a control to the device list"));
  return dev;
}

DeviceSpec
MakeVep()
{
  DeviceSpec dev;
  dev.id = "vep";
  dev.display_name = "usb-gadget-ep";
  dev.dev_node = "/dev/vep0";
  dev.magic = 0x67;
  dev.magic_macro = "VEP_MAGIC";
  dev.reg = RegistrationStyle::kMiscNodename;
  dev.dispatch = DispatchStyle::kDirectSwitch;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.0;
  dev.primary.name = "ep";

  StructSpec reqq;
  reqq.name = "vep_request";
  reqq.comment = "a transfer request queued on the endpoint";
  reqq.fields = {
      FieldSpec::Scalar("length", 32, "transfer length in bytes"),
      FieldSpec::Scalar("stream_id", 16),
      FieldSpec::Scalar("no_interrupt", 8),
      FieldSpec::Scalar("zero", 8, "must be zero"),
      FieldSpec::Scalar("buf", 64, "userspace buffer address"),
  };
  dev.structs.push_back(std::move(reqq));

  StructSpec status;
  status.name = "vep_status";
  status.fields = {
      FieldSpec::Out("queued", 32, "requests currently queued"),
      FieldSpec::Out("halted", 32),
  };
  dev.structs.push_back(std::move(status));

  auto& io = dev.primary.ioctls;
  IoctlSpec queue = Cmd("VEP_QUEUE", 1, 'w', "vep_request", Dir::kIn,
                        {CheckSpec::Equals("zero", 0)}, 5,
                        "queue a transfer request");
  queue.bug = Bug("WARNING in usb_ep_queue", "CVE-2024-25741", true, false,
                  BugSpec::Trigger::kFieldAtLeast, "length", 0x10000);
  io.push_back(std::move(queue));

  IoctlSpec dequeue = Cmd("VEP_DEQUEUE", 2, 'w', "vep_request", Dir::kIn, {},
                          4, "cancel a queued request");
  dequeue.bug = Bug("BUG: corrupted list in vep_queue", "", true, false,
                    BugSpec::Trigger::kSequence, "", 0, "VEP_QUEUE");
  io.push_back(std::move(dequeue));

  io.push_back(Cmd("VEP_SET_HALT", 3, 'n', "", Dir::kIn, {}, 2,
                   "halt the endpoint"));
  io.push_back(Cmd("VEP_FIFO_STATUS", 4, 'r', "vep_status", Dir::kOut, {}, 2,
                   "query queue status"));
  return dev;
}

DeviceSpec
MakePtp()
{
  DeviceSpec dev;
  dev.id = "ptp";
  dev.display_name = "ptp-clock";
  dev.dev_node = "/dev/ptp0";
  dev.magic = 0x3d;  // '='
  dev.magic_macro = "PTP_CLK_MAGIC";
  dev.reg = RegistrationStyle::kDeviceCreate;
  dev.dispatch = DispatchStyle::kIocNrSwitch;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.0;
  dev.primary.name = "clock";

  StructSpec caps;
  caps.name = "ptp_clock_caps";
  caps.comment = "clock capability report";
  caps.fields = {
      FieldSpec::Out("max_adj", 32, "max frequency adjustment (ppb)"),
      FieldSpec::Out("n_alarm", 32),
      FieldSpec::Out("n_ext_ts", 32),
      FieldSpec::Out("n_per_out", 32),
      FieldSpec::Out("pps", 32),
  };
  dev.structs.push_back(std::move(caps));

  StructSpec extts;
  extts.name = "ptp_extts_request";
  extts.fields = {
      FieldSpec::Scalar("index", 32, "channel index"),
      FieldSpec::Flags("flags", "ptp_extts_flags", 32),
  };
  dev.structs.push_back(std::move(extts));

  StructSpec perout;
  perout.name = "ptp_perout_request";
  perout.comment = "periodic output programming";
  perout.fields = {
      FieldSpec::Scalar("start_sec", 64),
      FieldSpec::Scalar("start_nsec", 32),
      FieldSpec::Scalar("period_sec", 64),
      FieldSpec::Scalar("period_nsec", 32),
      FieldSpec::Scalar("index", 32),
      FieldSpec::Flags("flags", "ptp_extts_flags", 32),
  };
  dev.structs.push_back(std::move(perout));

  dev.flag_sets.push_back({"ptp_extts_flags",
                           {{"PTP_ENABLE_FEATURE", 1},
                            {"PTP_RISING_EDGE", 2},
                            {"PTP_FALLING_EDGE", 4}}});

  auto& io = dev.primary.ioctls;
  IoctlSpec getcaps = Cmd("PTP_CLOCK_GETCAPS", 1, 'r', "ptp_clock_caps",
                          Dir::kOut, {}, 3, "query clock capabilities");
  getcaps.bug = Bug("memory leak in posix_clock_open", "CVE-2024-26655", true,
                    true, BugSpec::Trigger::kAlways);
  io.push_back(std::move(getcaps));

  io.push_back(Cmd("PTP_EXTTS_REQUEST", 2, 'w', "ptp_extts_request", Dir::kIn,
                   {CheckSpec::Range("index", 0, 3)}, 4,
                   "arm external timestamping"));
  io.push_back(Cmd("PTP_PEROUT_REQUEST", 3, 'w', "ptp_perout_request",
                   Dir::kIn,
                   {CheckSpec::Range("index", 0, 3),
                    CheckSpec::NonZero("period_sec")},
                   4, "program a periodic output"));
  return dev;
}

DeviceSpec
MakeLoopControl()
{
  DeviceSpec dev;
  dev.id = "loop_control";
  dev.display_name = "loop-control";
  dev.dev_node = "/dev/loop-control";
  dev.magic = 0x4c;
  dev.magic_macro = "LOOP_CTL_MAGIC";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kDirectSwitch;
  dev.delegation_depth = 1;
  dev.existing_fraction = 1.0;
  dev.primary.name = "ctl";

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("LOOP_CTL_ADD", 0x80, 'n', "", Dir::kIn, {}, 3,
                   "add a loop device"));
  io.push_back(Cmd("LOOP_CTL_REMOVE", 0x81, 'n', "", Dir::kIn, {}, 3,
                   "remove a loop device"));
  io.push_back(Cmd("LOOP_CTL_GET_FREE", 0x82, 'n', "", Dir::kIn, {}, 2,
                   "find the first unused loop device"));
  return dev;
}

DeviceSpec
MakeLoop0()
{
  return MakeGenericDriver("loop0", "loop#", "/dev/loop0", 0x4c,
                           RegistrationStyle::kDeviceCreate,
                           DispatchStyle::kDirectSwitch, 2, 11, 1.0, 11);
}

DeviceSpec
MakeVhostNet()
{
  DeviceSpec dev;
  dev.id = "vhost_net";
  dev.display_name = "vhost-net";
  dev.dev_node = "/dev/vhost-net";
  dev.magic = 0xaf;
  dev.magic_macro = "VHOST_VIRTIO";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kDirectSwitch;
  dev.delegation_depth = 2;
  dev.existing_fraction = 1.0;
  dev.primary.name = "net";

  StructSpec state;
  state.name = "vhost_vring_state";
  state.fields = {
      FieldSpec::Scalar("index", 32, "virtqueue index"),
      FieldSpec::Scalar("num", 32),
  };
  dev.structs.push_back(std::move(state));

  StructSpec file;
  file.name = "vhost_vring_file";
  file.fields = {
      FieldSpec::Scalar("index", 32, "virtqueue index"),
      FieldSpec::Scalar("fd", 64, "eventfd or backend fd; -1 to unbind"),
  };
  dev.structs.push_back(std::move(file));

  StructSpec mem;
  mem.name = "vhost_memory";
  mem.comment = "guest memory layout table";
  mem.fields = {
      FieldSpec::LenOf("nregions", "regions", 32),
      FieldSpec::Scalar("padding", 32, "must be zero"),
      FieldSpec::Array("regions", 64, 8, "flattened region descriptors"),
  };
  dev.structs.push_back(std::move(mem));

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("VHOST_GET_FEATURES", 0, 'r', "vhost_vring_state",
                   Dir::kOut, {}, 2, "read supported feature bits"));
  io.push_back(Cmd("VHOST_SET_FEATURES", 1, 'w', "vhost_vring_state",
                   Dir::kIn, {}, 3, "acknowledge feature bits"));
  io.push_back(
      Cmd("VHOST_SET_OWNER", 2, 'n', "", Dir::kIn, {}, 2, "claim the device"));
  io.push_back(Cmd("VHOST_RESET_OWNER", 3, 'n', "", Dir::kIn, {}, 2,
                   "release the device"));
  io.push_back(Cmd("VHOST_SET_MEM_TABLE", 4, 'w', "vhost_memory", Dir::kIn,
                   {CheckSpec::LenBound("nregions"),
                    CheckSpec::Equals("padding", 0)},
                   5, "install the guest memory table"));
  io.push_back(Cmd("VHOST_SET_VRING_NUM", 16, 'w', "vhost_vring_state",
                   Dir::kIn, {CheckSpec::Range("index", 0, 2)}, 4,
                   "set ring size"));
  io.push_back(Cmd("VHOST_SET_VRING_BASE", 18, 'w', "vhost_vring_state",
                   Dir::kIn, {CheckSpec::Range("index", 0, 2)}, 3,
                   "set ring base index"));
  io.push_back(Cmd("VHOST_GET_VRING_BASE", 19, 'b', "vhost_vring_state",
                   Dir::kInOut, {CheckSpec::Range("index", 0, 2)}, 3,
                   "read ring base index"));
  io.push_back(Cmd("VHOST_SET_VRING_KICK", 32, 'w', "vhost_vring_file",
                   Dir::kIn, {CheckSpec::Range("index", 0, 2)}, 4,
                   "bind the kick eventfd"));
  io.push_back(Cmd("VHOST_NET_SET_BACKEND", 48, 'w', "vhost_vring_file",
                   Dir::kIn, {CheckSpec::Range("index", 0, 1)}, 5,
                   "bind the tap backend"));
  return dev;
}

DeviceSpec
MakeVhostVsock()
{
  DeviceSpec dev;
  dev.id = "vhost_vsock";
  dev.display_name = "vhost-vsock";
  dev.dev_node = "/dev/vhost-vsock";
  dev.magic = 0xaf;
  dev.magic_macro = "VHOST_VSOCK_VIRTIO";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kDirectSwitch;
  dev.delegation_depth = 2;
  dev.existing_fraction = 0.15;
  dev.primary.name = "vsock";

  StructSpec state;
  state.name = "vhost_vsock_state";
  state.fields = {
      FieldSpec::Scalar("index", 32),
      FieldSpec::Scalar("num", 32),
  };
  dev.structs.push_back(std::move(state));

  StructSpec cid;
  cid.name = "vhost_vsock_cid";
  cid.fields = {
      FieldSpec::Scalar("cid", 64, "guest context id; >= 3 for guests"),
  };
  dev.structs.push_back(std::move(cid));

  auto& io = dev.primary.ioctls;
  io.push_back(Cmd("VHOST_VSOCK_SET_GUEST_CID", 96, 'w', "vhost_vsock_cid",
                   Dir::kIn, {CheckSpec::Range("cid", 3, 0xffff)}, 4,
                   "assign the guest context id"));
  io.push_back(Cmd("VHOST_VSOCK_SET_RUNNING", 97, 'w', "vhost_vsock_state",
                   Dir::kIn, {CheckSpec::Range("num", 0, 1)}, 4,
                   "start or stop the device"));
  io.push_back(Cmd("VHOST_VSOCK_GET_FEATURES", 98, 'r', "vhost_vsock_state",
                   Dir::kOut, {}, 2, "read feature bits"));
  io.push_back(Cmd("VHOST_VSOCK_SET_FEATURES", 99, 'w', "vhost_vsock_state",
                   Dir::kIn, {}, 3, "write feature bits"));
  io.push_back(Cmd("VHOST_VSOCK_SET_VRING_NUM", 100, 'w', "vhost_vsock_state",
                   Dir::kIn, {CheckSpec::Range("index", 0, 1)}, 3,
                   "set ring size"));
  io.push_back(Cmd("VHOST_VSOCK_SET_VRING_BASE", 101, 'w',
                   "vhost_vsock_state", Dir::kIn,
                   {CheckSpec::Range("index", 0, 1)}, 3,
                   "set ring base"));
  return dev;
}

DeviceSpec
MakeSnapshot()
{
  DeviceSpec dev;
  dev.id = "snapshot";
  dev.display_name = "snapshot";
  dev.dev_node = "/dev/snapshot";
  dev.magic = 0x33;
  dev.magic_macro = "SNAPSHOT_IOC_MAGIC";
  dev.reg = RegistrationStyle::kMiscName;
  dev.dispatch = DispatchStyle::kTableLookup;
  dev.delegation_depth = 1;
  dev.existing_fraction = 0.85;
  dev.primary.name = "ctl";

  StructSpec swap;
  swap.name = "snapshot_swap_area";
  swap.fields = {
      FieldSpec::Scalar("offset", 64, "swap offset in pages"),
      FieldSpec::Scalar("dev", 32, "swap device number"),
  };
  dev.structs.push_back(std::move(swap));

  StructSpec size;
  size.name = "snapshot_image_size";
  size.fields = {
      FieldSpec::Out("size", 64, "image size in bytes"),
  };
  dev.structs.push_back(std::move(size));

  auto& io = dev.primary.ioctls;
  const char* names[] = {"SNAPSHOT_FREEZE",        "SNAPSHOT_UNFREEZE",
                         "SNAPSHOT_ATOMIC_RESTORE", "SNAPSHOT_FREE",
                         "SNAPSHOT_S2RAM",          "SNAPSHOT_PLATFORM_SUPPORT",
                         "SNAPSHOT_POWER_OFF",      "SNAPSHOT_CREATE_IMAGE"};
  uint64_t nr = 1;
  for (const char* name : names) {
    io.push_back(Cmd(name, nr++, 'n', "", Dir::kIn, {}, 3));
  }
  io.push_back(Cmd("SNAPSHOT_SET_SWAP_AREA", 13, 'w', "snapshot_swap_area",
                   Dir::kIn, {CheckSpec::NonZero("dev")}, 4,
                   "designate the swap area for the image"));
  io.push_back(Cmd("SNAPSHOT_GET_IMAGE_SIZE", 14, 'r', "snapshot_image_size",
                   Dir::kOut, {}, 2, "query the hibernation image size"));
  io.push_back(Cmd("SNAPSHOT_AVAIL_SWAP_SIZE", 19, 'r',
                   "snapshot_image_size", Dir::kOut, {}, 2,
                   "query available swap"));
  io.push_back(Cmd("SNAPSHOT_ALLOC_SWAP_PAGE", 20, 'r', "snapshot_image_size",
                   Dir::kOut, {}, 3, "allocate one swap page"));
  return dev;
}

}  // namespace kernelgpt::drivers
