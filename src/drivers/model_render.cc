#include "drivers/model_render.h"

#include <cctype>

#include "util/strings.h"

namespace kernelgpt::drivers {

namespace {

using util::Format;

std::string
Upper(const std::string& s)
{
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

/// Macro prefix of a module, e.g. "DM" for id "dm".
std::string
Prefix(const std::string& id)
{
  return Upper(id);
}

/// The last path component of the device node ("/dev/mapper/control" ->
/// "mapper/control" relative to /dev, "control" as basename).
std::string
NodeRelativeToDev(const std::string& node)
{
  if (util::StartsWith(node, "/dev/")) return node.substr(5);
  if (util::StartsWith(node, "/proc/")) return node.substr(6);
  return node;
}

std::string
RenderFieldDecl(const FieldSpec& f)
{
  std::string out = "\t";
  switch (f.kind) {
    case FieldSpec::Kind::kScalar:
    case FieldSpec::Kind::kLenOf:
    case FieldSpec::Kind::kFlags:
    case FieldSpec::Kind::kOutValue:
      out += CScalarName(f.bits) + " " + f.name + ";";
      break;
    case FieldSpec::Kind::kArray:
      if (f.array_len == 0) {
        out += CScalarName(f.bits) + " " + f.name + "[];";
      } else {
        out += CScalarName(f.bits) + " " + f.name +
               Format("[%llu];", static_cast<unsigned long long>(f.array_len));
      }
      break;
    case FieldSpec::Kind::kString:
      out += "char " + f.name +
             Format("[%llu];", static_cast<unsigned long long>(f.array_len));
      break;
    case FieldSpec::Kind::kStructRef:
      out += "struct " + f.struct_ref + " " + f.name + ";";
      break;
  }
  if (!f.comment.empty()) out += " /* " + f.comment + " */";
  out += "\n";
  return out;
}

std::string
RenderStructDef(const StructSpec& s)
{
  std::string out;
  if (!s.comment.empty()) out += "/* " + s.comment + " */\n";
  out += std::string(s.is_union ? "union " : "struct ") + s.name + " {\n";
  for (const auto& f : s.fields) out += RenderFieldDecl(f);
  out += "};\n\n";
  return out;
}

/// Renders the per-command checks as early-return validations.
std::string
RenderChecks(const IoctlSpec& cmd, const StructSpec* arg)
{
  std::string out;
  for (const CheckSpec& c : cmd.checks) {
    switch (c.kind) {
      case CheckSpec::Kind::kRange:
        out += Format("\tif (param.%s < %lld || param.%s > %lld)\n"
                      "\t\treturn -EINVAL;\n",
                      c.field.c_str(), static_cast<long long>(c.min),
                      c.field.c_str(), static_cast<long long>(c.max));
        break;
      case CheckSpec::Kind::kEquals:
        out += Format("\tif (param.%s != %llu)\n\t\treturn -EINVAL;\n",
                      c.field.c_str(),
                      static_cast<unsigned long long>(c.value));
        break;
      case CheckSpec::Kind::kNonZero:
        out += Format("\tif (!param.%s)\n\t\treturn -EINVAL;\n",
                      c.field.c_str());
        break;
      case CheckSpec::Kind::kLenBound: {
        uint64_t capacity = 4096;
        if (arg) {
          const FieldSpec* len_field = arg->FindField(c.field);
          if (len_field) {
            const FieldSpec* target = arg->FindField(len_field->len_of);
            if (target && target->array_len > 0) capacity = target->array_len;
          }
        }
        out += Format("\tif (param.%s > %llu)\n\t\treturn -EINVAL;\n",
                      c.field.c_str(),
                      static_cast<unsigned long long>(capacity));
        break;
      }
    }
  }
  return out;
}

/// Renders the deep-path body, including the bug site when present.
std::string
RenderDeepPath(const IoctlSpec& cmd, const StructSpec* arg)
{
  std::string out;
  if (cmd.bug) {
    switch (cmd.bug->trigger) {
      case BugSpec::Trigger::kFieldAtLeast:
        // Missing upper-bound check before an allocation — the
        // CVE-2024-23851 pattern.
        out += Format("\tbuf = kvmalloc(param.%s, GFP_KERNEL);\n"
                      "\tif (!buf)\n\t\treturn -ENOMEM;\n",
                      cmd.bug->field.c_str());
        break;
      case BugSpec::Trigger::kFieldZero:
        // Missing zero check before a division.
        out += Format("\tstride = total_size / param.%s;\n",
                      cmd.bug->field.c_str());
        break;
      case BugSpec::Trigger::kFieldEquals:
        out += Format("\tstate_table[param.%s & 0xff] = 1;\n",
                      cmd.bug->field.c_str());
        break;
      case BugSpec::Trigger::kSequence:
        out += "\t/* assumes setup by an earlier command */\n"
               "\tlist_del(&ctx->pending);\n";
        break;
      case BugSpec::Trigger::kOnRelease:
        out += "\tqueue_work(wq, &ctx->work); /* not flushed on release */\n";
        break;
      case BugSpec::Trigger::kAlways:
        out += "\tctx->obj = alloc_object(); /* refcount not taken */\n";
        break;
    }
  }
  // Plausible deep processing referencing the argument fields.
  if (arg) {
    for (const auto& f : arg->fields) {
      if (f.kind == FieldSpec::Kind::kOutValue) {
        out += Format("\tparam.%s = ctx->next_%s++;\n", f.name.c_str(),
                      f.name.c_str());
      } else if (f.kind == FieldSpec::Kind::kArray ||
                 f.kind == FieldSpec::Kind::kString) {
        out += Format("\tprocess_buffer(param.%s);\n", f.name.c_str());
      }
    }
  }
  out += "\tcomplete_request(ctx);\n";
  return out;
}

/// Renders the per-command helper containing copy_from_user, checks, and
/// the deep path.
std::string
RenderSubFunction(const DeviceSpec& dev, const HandlerSpec& handler,
                  const IoctlSpec& cmd)
{
  const StructSpec* arg =
      cmd.arg_struct.empty() ? nullptr : dev.FindStruct(cmd.arg_struct);
  std::string fn_name = SubFunctionName(dev, handler, cmd);
  std::string out;
  if (!cmd.comment.empty()) out += "/* " + cmd.comment + " */\n";
  out += Format("static int %s(struct file *file, unsigned long u)\n{\n",
                fn_name.c_str());
  if (arg) {
    out += Format("\tstruct %s param;\n", arg->name.c_str());
    out += "\tvoid *buf;\n\tunsigned long stride;\n";
    if (cmd.dir == syzlang::Dir::kOut) {
      // Pure-output command: the kernel fills the struct.
      out += "\tmemset(&param, 0, sizeof(param));\n";
    } else {
      out += Format("\tif (copy_from_user(&param, (void *)u, sizeof(struct "
                    "%s)))\n\t\treturn -EFAULT;\n",
                    arg->name.c_str());
      out += RenderChecks(cmd, arg);
    }
  }
  if (!cmd.creates_handler.empty()) {
    // Secondary handler creation (the KVM_CREATE_VM idiom).
    const HandlerSpec* sub = dev.FindHandler(cmd.creates_handler);
    if (sub) {
      out += Format("\treturn anon_inode_getfd(\"%s-%s\", &%s, file, 0);\n",
                    dev.id.c_str(), sub->name.c_str(),
                    FopsVarName(dev, *sub).c_str());
      out += "}\n\n";
      return out;
    }
  }
  out += RenderDeepPath(cmd, arg);
  if (arg && cmd.dir != syzlang::Dir::kIn) {
    out += Format("\tif (copy_to_user((void *)u, &param, sizeof(struct "
                  "%s)))\n\t\treturn -EFAULT;\n",
                  arg->name.c_str());
  }
  out += "\treturn 0;\n}\n\n";
  return out;
}

/// Renders the dispatch function of one handler per the device's style.
std::string
RenderDispatch(const DeviceSpec& dev, const HandlerSpec& handler)
{
  std::string out;
  std::string fn = DispatchFunctionName(dev, handler);
  std::string p = Prefix(dev.id);

  if (dev.dispatch == DispatchStyle::kTableLookup) {
    // Table of {cmd, fn} entries plus a lookup helper.
    out += Format("typedef int (*%s_ioctl_fn)(struct file *file, unsigned "
                  "long u);\n",
                  dev.id.c_str());
    out += Format("struct %s_ioctl_entry {\n\tunsigned int cmd;\n\t%s_ioctl_fn "
                  "fn;\n};\n\n",
                  dev.id.c_str(), dev.id.c_str());
    out += Format("static struct %s_ioctl_entry _%s_%s_ioctls[] = {\n",
                  dev.id.c_str(), dev.id.c_str(), handler.name.c_str());
    for (const auto& cmd : handler.ioctls) {
      out += Format("\t{ %s, %s },\n", cmd.macro.c_str(),
                    SubFunctionName(dev, handler, cmd).c_str());
    }
    out += "};\n\n";
    out += Format(
        "static %s_ioctl_fn %s_lookup_ioctl(unsigned int cmd)\n{\n"
        "\tunsigned int i;\n"
        "\tfor (i = 0; i < %zu; i++) {\n"
        "\t\tif (_%s_%s_ioctls[i].cmd == cmd)\n"
        "\t\t\treturn _%s_%s_ioctls[i].fn;\n"
        "\t}\n"
        "\treturn 0;\n}\n\n",
        dev.id.c_str(), dev.id.c_str(), handler.ioctls.size(), dev.id.c_str(),
        handler.name.c_str(), dev.id.c_str(), handler.name.c_str());
    out += Format(
        "static int %s(struct file *file, unsigned int command, unsigned "
        "long u)\n{\n"
        "\t%s_ioctl_fn fn;\n"
        "\tfn = %s_lookup_ioctl(command);\n"
        "\tif (!fn)\n\t\treturn -ENOTTY;\n"
        "\treturn fn(file, u);\n}\n\n",
        fn.c_str(), dev.id.c_str(), dev.id.c_str());
    return out;
  }

  bool nr_switch = dev.dispatch == DispatchStyle::kIocNrSwitch;
  out += Format("static int %s(struct file *file, unsigned int command, "
                "unsigned long u)\n{\n",
                fn.c_str());
  if (nr_switch) {
    out += "\tunsigned int cmd;\n";
    out += "\tcmd = _IOC_NR(command);\n";
    out += "\tswitch (cmd) {\n";
  } else {
    out += "\tswitch (command) {\n";
  }
  for (const auto& cmd : handler.ioctls) {
    std::string label = nr_switch ? NrMacroName(cmd) : cmd.macro;
    out += Format("\tcase %s:\n\t\treturn %s(file, u);\n", label.c_str(),
                  SubFunctionName(dev, handler, cmd).c_str());
  }
  out += "\tdefault:\n\t\tbreak;\n\t}\n\treturn -ENOTTY;\n}\n\n";
  (void)p;
  return out;
}

/// Renders the delegation chain from the registered entry point down to
/// the dispatch function.
std::string
RenderDelegationChain(const DeviceSpec& dev, const HandlerSpec& handler)
{
  std::string out;
  int levels = dev.delegation_depth;
  if (levels <= 1) return out;  // Registered function *is* the dispatcher.
  std::string inner = DispatchFunctionName(dev, handler);
  for (int level = levels - 1; level >= 1; --level) {
    std::string name =
        level == 1
            ? RegisteredFunctionName(dev, handler)
            : Format("%s_%s_ioctl_l%d", dev.id.c_str(), handler.name.c_str(),
                     level);
    out += Format(
        "static long %s(struct file *file, unsigned int command, unsigned "
        "long u)\n{\n\treturn %s(file, command, u);\n}\n\n",
        name.c_str(), inner.c_str());
    inner = name;
  }
  return out;
}

std::string
RenderFops(const DeviceSpec& dev, const HandlerSpec& handler)
{
  std::string out;
  out += Format("static const struct file_operations %s = {\n",
                FopsVarName(dev, handler).c_str());
  out += "\t.owner = THIS_MODULE,\n";
  out += Format("\t.open = %s_open,\n", dev.id.c_str());
  out += Format("\t.unlocked_ioctl = %s,\n",
                RegisteredFunctionName(dev, handler).c_str());
  out += Format("\t.compat_ioctl = %s,\n",
                RegisteredFunctionName(dev, handler).c_str());
  out += "\t.llseek = noop_llseek,\n};\n\n";
  return out;
}

std::string
RenderRegistration(const DeviceSpec& dev)
{
  std::string out;
  std::string p = Prefix(dev.id);
  std::string rel = NodeRelativeToDev(dev.dev_node);

  switch (dev.reg) {
    case RegistrationStyle::kMiscName:
      out += Format("static struct miscdevice _%s_misc = {\n"
                    "\t.minor = MISC_DYNAMIC_MINOR,\n"
                    "\t.name = %s_NAME,\n"
                    "\t.fops = &%s,\n};\n\n",
                    dev.id.c_str(), p.c_str(),
                    FopsVarName(dev, dev.primary).c_str());
      break;
    case RegistrationStyle::kMiscNodename: {
      // .name holds a legacy module name; the true node comes from
      // .nodename (the Fig. 2 idiom).
      auto slash = rel.find('/');
      std::string dir = slash == std::string::npos ? "" : rel.substr(0, slash);
      out += Format("static struct miscdevice _%s_misc = {\n"
                    "\t.minor = %s_CTRL_MINOR,\n"
                    "\t.name = %s_NAME,\n",
                    dev.id.c_str(), p.c_str(), p.c_str());
      if (dir.empty()) {
        out += Format("\t.nodename = %s_NODE,\n", p.c_str());
      } else {
        out += Format("\t.nodename = %s_DIR \"/\" %s_NODE,\n", p.c_str(),
                      p.c_str());
      }
      out += Format("\t.fops = &%s,\n};\n\n",
                    FopsVarName(dev, dev.primary).c_str());
      break;
    }
    case RegistrationStyle::kDeviceCreate: {
      // The node name is built with a printf format in the init function.
      std::string base = rel;
      std::string instance;
      while (!base.empty() &&
             std::isdigit(static_cast<unsigned char>(base.back()))) {
        instance.insert(instance.begin(), base.back());
        base.pop_back();
      }
      out += Format(
          "static int __init %s_init(void)\n{\n"
          "\t%s_major = register_chrdev(0, \"%s\", &%s);\n"
          "\t%s_class = class_create(\"%s\");\n"
          "\tdevice_create(%s_class, 0, MKDEV(%s_major, 0), 0, \"%s%%d\", "
          "%s);\n"
          "\treturn 0;\n}\n\n",
          dev.id.c_str(), dev.id.c_str(), base.c_str(),
          FopsVarName(dev, dev.primary).c_str(), dev.id.c_str(),
          dev.id.c_str(), dev.id.c_str(), dev.id.c_str(), base.c_str(),
          instance.empty() ? "0" : instance.c_str());
      break;
    }
    case RegistrationStyle::kProcCreate:
      out += Format(
          "static int __init %s_init(void)\n{\n"
          "\tproc_create(\"%s\", 0, 0, &%s);\n"
          "\treturn 0;\n}\n\n",
          dev.id.c_str(), rel.c_str(), FopsVarName(dev, dev.primary).c_str());
      break;
  }
  return out;
}

std::string
RenderFlagSets(const std::vector<FlagSetSpec>& sets)
{
  std::string out;
  for (const auto& fs : sets) {
    for (const auto& [name, value] : fs.values) {
      out += Format("#define %s 0x%llx\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    }
  }
  if (!out.empty()) out += "\n";
  return out;
}

}  // namespace

std::string
CScalarName(int bits)
{
  switch (bits) {
    case 8: return "__u8";
    case 16: return "__u16";
    case 32: return "__u32";
    case 64: return "__u64";
    default: return "__u32";
  }
}

std::string
NrMacroName(const IoctlSpec& cmd)
{
  return cmd.macro + "_NR";
}

std::string
SubFunctionName(const DeviceSpec& dev, const HandlerSpec& handler,
                const IoctlSpec& cmd)
{
  if (!cmd.sub_function.empty()) return cmd.sub_function;
  return dev.id + "_" + handler.name + "_" + util::ToLower(cmd.macro);
}

std::string
DispatchFunctionName(const DeviceSpec& dev, const HandlerSpec& handler)
{
  if (dev.delegation_depth <= 1) {
    return RegisteredFunctionName(dev, handler);
  }
  return dev.id + "_" + handler.name + "_do_ioctl";
}

std::string
RegisteredFunctionName(const DeviceSpec& dev, const HandlerSpec& handler)
{
  return dev.id + "_" + handler.name + "_ioctl";
}

std::string
FopsVarName(const DeviceSpec& dev, const HandlerSpec& handler)
{
  return "_" + dev.id + "_" + handler.name + "_fops";
}

std::string
RenderDeviceSource(const DeviceSpec& dev)
{
  std::string out;
  std::string p = Prefix(dev.id);
  std::string rel = NodeRelativeToDev(dev.dev_node);

  out += Format("/* Synthetic kernel module: %s (%s) */\n\n",
                dev.display_name.c_str(), dev.dev_node.c_str());

  // -- Macros ---------------------------------------------------------------
  out += Format("#define %s 0x%llx\n", dev.magic_macro.c_str(),
                static_cast<unsigned long long>(dev.magic));
  for (const auto& [name, value] : dev.extra_macros) {
    out += Format("#define %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  }

  // Device-name macros per registration style.
  switch (dev.reg) {
    case RegistrationStyle::kMiscName:
      out += Format("#define %s_NAME \"%s\"\n", p.c_str(), rel.c_str());
      break;
    case RegistrationStyle::kMiscNodename: {
      auto slash = rel.find('/');
      // Legacy .name deliberately differs from the true node path.
      out += Format("#define %s_NAME \"%s\"\n", p.c_str(),
                    dev.display_name.c_str());
      out += Format("#define %s_CTRL_MINOR 236\n", p.c_str());
      if (slash == std::string::npos) {
        out += Format("#define %s_NODE \"%s\"\n", p.c_str(), rel.c_str());
      } else {
        out += Format("#define %s_DIR \"%s\"\n", p.c_str(),
                      rel.substr(0, slash).c_str());
        out += Format("#define %s_NODE \"%s\"\n", p.c_str(),
                      rel.substr(slash + 1).c_str());
      }
      break;
    }
    case RegistrationStyle::kDeviceCreate:
    case RegistrationStyle::kProcCreate:
      break;
  }

  // Command macros for all handlers.
  auto render_cmd_macros = [&](const HandlerSpec& handler) {
    for (const auto& cmd : handler.ioctls) {
      out += Format("#define %s %llu\n", NrMacroName(cmd).c_str(),
                    static_cast<unsigned long long>(cmd.nr));
      const char* form = "_IOWR";
      switch (cmd.ioc_dir) {
        case 'n': form = "_IO"; break;
        case 'r': form = "_IOR"; break;
        case 'w': form = "_IOW"; break;
        default: form = "_IOWR"; break;
      }
      if (cmd.arg_struct.empty() || cmd.ioc_dir == 'n') {
        out += Format("#define %s _IO(%s, %s)\n", cmd.macro.c_str(),
                      dev.magic_macro.c_str(), NrMacroName(cmd).c_str());
      } else {
        out += Format("#define %s %s(%s, %s, struct %s)\n", cmd.macro.c_str(),
                      form, dev.magic_macro.c_str(), NrMacroName(cmd).c_str(),
                      cmd.arg_struct.c_str());
      }
    }
  };
  render_cmd_macros(dev.primary);
  for (const auto& h : dev.secondary) render_cmd_macros(h);
  out += "\n";

  out += RenderFlagSets(dev.flag_sets);

  // -- Types ----------------------------------------------------------------
  for (const auto& s : dev.structs) out += RenderStructDef(s);

  // -- open() ---------------------------------------------------------------
  out += Format(
      "static int %s_open(struct inode *inode, struct file *file)\n{\n"
      "\tfile->private_data = %s_ctx_alloc();\n\treturn 0;\n}\n\n",
      dev.id.c_str(), dev.id.c_str());

  // -- Per-command helpers, dispatch, delegation, fops — secondary handlers
  // first so that fd-creating commands can reference their fops vars.
  for (const auto& h : dev.secondary) {
    for (const auto& cmd : h.ioctls) out += RenderSubFunction(dev, h, cmd);
    out += RenderDispatch(dev, h);
    out += RenderDelegationChain(dev, h);
    out += RenderFops(dev, h);
  }
  for (const auto& cmd : dev.primary.ioctls) {
    out += RenderSubFunction(dev, dev.primary, cmd);
  }
  out += RenderDispatch(dev, dev.primary);
  out += RenderDelegationChain(dev, dev.primary);
  out += RenderFops(dev, dev.primary);

  // -- Registration -----------------------------------------------------------
  out += RenderRegistration(dev);
  return out;
}

std::string
RenderSocketSource(const SocketSpec& sock)
{
  std::string out;
  std::string p = Prefix(sock.id);

  out += Format("/* Synthetic socket family: %s */\n\n", sock.id.c_str());
  out += Format("#define %s %llu\n", sock.family_macro.c_str(),
                static_cast<unsigned long long>(sock.domain));
  out += Format("#define %s %llu\n", sock.sol_macro.c_str(),
                static_cast<unsigned long long>(sock.sol_level));
  if (!sock.sock_type_macro.empty()) {
    out += Format("#define %s %llu\n", sock.sock_type_macro.c_str(),
                  static_cast<unsigned long long>(sock.sock_type));
  }
  for (const auto& [name, value] : sock.extra_macros) {
    out += Format("#define %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  }
  for (const auto& opt : sock.sockopts) {
    out += Format("#define %s %llu\n", opt.macro.c_str(),
                  static_cast<unsigned long long>(opt.value));
  }
  out += "\n";
  out += RenderFlagSets(sock.flag_sets);
  for (const auto& s : sock.structs) out += RenderStructDef(s);

  // setsockopt helpers + dispatcher.
  for (const auto& opt : sock.sockopts) {
    const StructSpec* arg =
        opt.arg_struct.empty() ? nullptr : sock.FindStruct(opt.arg_struct);
    std::string fn = sock.id + "_set_" + util::ToLower(opt.macro);
    if (!opt.comment.empty()) out += "/* " + opt.comment + " */\n";
    out += Format("static int %s(struct sock *sk, char *optval, unsigned int "
                  "optlen)\n{\n",
                  fn.c_str());
    if (arg) {
      out += Format("\tstruct %s param;\n", arg->name.c_str());
      out += "\tvoid *buf;\n\tunsigned long stride;\n";
      out += Format("\tif (copy_from_user(&param, optval, sizeof(struct "
                    "%s)))\n\t\treturn -EFAULT;\n",
                    arg->name.c_str());
      IoctlSpec pseudo;
      pseudo.checks = opt.checks;
      pseudo.bug = opt.bug;
      out += RenderChecks(pseudo, arg);
      out += RenderDeepPath(pseudo, arg);
    } else {
      out += "\tint val;\n"
             "\tif (copy_from_user(&val, optval, sizeof(int)))\n"
             "\t\treturn -EFAULT;\n"
             "\tsk->setting = val;\n";
    }
    out += "\treturn 0;\n}\n\n";
  }

  out += Format(
      "static int %s_setsockopt(struct socket *sock, int level, int optname, "
      "char *optval, unsigned int optlen)\n{\n"
      "\tstruct sock *sk = sock->sk;\n"
      "\tif (level != %s)\n\t\treturn -ENOPROTOOPT;\n"
      "\tswitch (optname) {\n",
      sock.id.c_str(), sock.sol_macro.c_str());
  for (const auto& opt : sock.sockopts) {
    if (!opt.settable) continue;
    out += Format("\tcase %s:\n\t\treturn %s_set_%s(sk, optval, optlen);\n",
                  opt.macro.c_str(), sock.id.c_str(),
                  util::ToLower(opt.macro).c_str());
  }
  out += "\tdefault:\n\t\tbreak;\n\t}\n\treturn -ENOPROTOOPT;\n}\n\n";

  // getsockopt fill helpers (kernel -> user direction).
  for (const auto& opt : sock.sockopts) {
    if (!opt.gettable) continue;
    const StructSpec* arg =
        opt.arg_struct.empty() ? nullptr : sock.FindStruct(opt.arg_struct);
    out += Format("static int %s_fill_%s(struct socket *sock, char "
                  "*optval)\n{\n",
                  sock.id.c_str(), util::ToLower(opt.macro).c_str());
    if (arg) {
      out += Format("\tstruct %s param;\n", arg->name.c_str());
      out += Format("\tfill_current_state(sock, &param);\n");
      out += Format("\tif (copy_to_user(optval, &param, sizeof(struct "
                    "%s)))\n\t\treturn -EFAULT;\n",
                    arg->name.c_str());
    } else {
      out += "\tint val = sock->sk->setting;\n"
             "\tif (copy_to_user(optval, &val, sizeof(int)))\n"
             "\t\treturn -EFAULT;\n";
    }
    out += "\treturn 0;\n}\n\n";
  }

  out += Format(
      "static int %s_getsockopt(struct socket *sock, int level, int optname, "
      "char *optval, int *optlen)\n{\n"
      "\tif (level != %s)\n\t\treturn -ENOPROTOOPT;\n"
      "\tswitch (optname) {\n",
      sock.id.c_str(), sock.sol_macro.c_str());
  for (const auto& opt : sock.sockopts) {
    if (!opt.gettable) continue;
    out += Format("\tcase %s:\n\t\treturn %s_fill_%s(sock, optval);\n",
                  opt.macro.c_str(), sock.id.c_str(),
                  util::ToLower(opt.macro).c_str());
  }
  out += "\tdefault:\n\t\tbreak;\n\t}\n\treturn -ENOPROTOOPT;\n}\n\n";

  // Data-path operations.
  auto render_op = [&](const char* op, const SocketOpSpec& spec,
                       const char* signature, const char* addr_param) {
    if (!spec.supported) return;
    out += Format("static int %s_%s(%s)\n{\n", sock.id.c_str(), op, signature);
    const StructSpec* addr =
        sock.addr_struct.empty() ? nullptr : sock.FindStruct(sock.addr_struct);
    if (addr && addr_param) {
      out += Format("\tstruct %s addr;\n", addr->name.c_str());
      out += Format("\tif (copy_from_user(&addr, %s, sizeof(struct "
                    "%s)))\n\t\treturn -EFAULT;\n",
                    addr_param, addr->name.c_str());
      for (const CheckSpec& c : spec.checks) {
        if (c.kind == CheckSpec::Kind::kEquals) {
          out += Format("\tif (addr.%s != %llu)\n\t\treturn -EINVAL;\n",
                        c.field.c_str(),
                        static_cast<unsigned long long>(c.value));
        } else if (c.kind == CheckSpec::Kind::kRange) {
          out += Format("\tif (addr.%s < %lld || addr.%s > %lld)\n"
                        "\t\treturn -EINVAL;\n",
                        c.field.c_str(), static_cast<long long>(c.min),
                        c.field.c_str(), static_cast<long long>(c.max));
        } else if (c.kind == CheckSpec::Kind::kNonZero) {
          out += Format("\tif (!addr.%s)\n\t\treturn -EINVAL;\n",
                        c.field.c_str());
        }
      }
    }
    if (spec.bug) {
      switch (spec.bug->trigger) {
        case BugSpec::Trigger::kFieldAtLeast:
          out += Format("\tidx = addr.%s; /* unchecked index */\n"
                        "\ttable[idx] = 1;\n",
                        spec.bug->field.c_str());
          break;
        case BugSpec::Trigger::kFieldZero:
          out += Format("\tchunk = len / addr.%s;\n", spec.bug->field.c_str());
          break;
        default:
          out += "\tsk->pending = alloc_skb(len); /* leaked on error */\n";
          break;
      }
    }
    out += "\tsock_queue_op(sock);\n\treturn 0;\n}\n\n";
  };

  render_op("bind", sock.bind,
            "struct socket *sock, struct sockaddr *uaddr, int addr_len",
            "uaddr");
  render_op("connect", sock.connect,
            "struct socket *sock, struct sockaddr *uaddr, int addr_len",
            "uaddr");
  render_op("sendmsg", sock.sendto,
            "struct socket *sock, struct msghdr *msg, size_t len",
            "msg->msg_name");
  render_op("recvmsg", sock.recvfrom,
            "struct socket *sock, struct msghdr *msg, size_t len",
            nullptr);
  render_op("listen", sock.listen, "struct socket *sock, int backlog",
            nullptr);
  render_op("accept", sock.accept,
            "struct socket *sock, struct socket *newsock, int flags",
            nullptr);

  // proto_ops table.
  out += Format("static const struct proto_ops %s_proto_ops = {\n"
                "\t.family = %s,\n",
                sock.id.c_str(), sock.family_macro.c_str());
  if (sock.bind.supported) out += Format("\t.bind = %s_bind,\n", sock.id.c_str());
  if (sock.connect.supported) {
    out += Format("\t.connect = %s_connect,\n", sock.id.c_str());
  }
  if (sock.sendto.supported) {
    out += Format("\t.sendmsg = %s_sendmsg,\n", sock.id.c_str());
  }
  if (sock.recvfrom.supported) {
    out += Format("\t.recvmsg = %s_recvmsg,\n", sock.id.c_str());
  }
  if (sock.listen.supported) {
    out += Format("\t.listen = %s_listen,\n", sock.id.c_str());
  }
  if (sock.accept.supported) {
    out += Format("\t.accept = %s_accept,\n", sock.id.c_str());
  }
  out += Format("\t.setsockopt = %s_setsockopt,\n"
                "\t.getsockopt = %s_getsockopt,\n"
                "};\n\n",
                sock.id.c_str(), sock.id.c_str());

  // create() + family registration.
  out += Format("static int %s_create(struct net *net, struct socket *sock, "
                "int protocol, int kern)\n{\n",
                sock.id.c_str());
  if (sock.sock_type != 0) {
    out += Format("\tif (sock->type != %s)\n\t\treturn -ESOCKTNOSUPPORT;\n",
                  sock.sock_type_macro.c_str());
  }
  if (sock.protocol != 0) {
    out += Format("\tif (protocol != %llu)\n\t\treturn -EPROTONOSUPPORT;\n",
                  static_cast<unsigned long long>(sock.protocol));
  }
  out += Format("\tsock->ops = &%s_proto_ops;\n\treturn 0;\n}\n\n",
                sock.id.c_str());
  out += Format("static struct net_proto_family %s_family_ops = {\n"
                "\t.family = %s,\n"
                "\t.create = %s_create,\n"
                "};\n",
                sock.id.c_str(), sock.family_macro.c_str(), sock.id.c_str());
  (void)p;
  return out;
}

}  // namespace kernelgpt::drivers
