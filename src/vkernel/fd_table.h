/// \file
/// Per-model virtual file-descriptor translation table, in the style of
/// libriscv's FileDescriptors: each KernelModel owns its fd space and
/// decides how virtual descriptor numbers are laid out. The reference
/// (strict) layout allocates files and sockets from one monotonic
/// counter starting at 3 — exactly the numbering the pre-refactor flat
/// table produced — so unified-layout lookups stay a bounds check plus
/// an index. Split layouts give files and sockets disjoint number
/// ranges with independent counters, which exercises descriptor
/// translation (lookups can no longer assume vfd == base + slot).

#ifndef KERNELGPT_VKERNEL_FD_TABLE_H_
#define KERNELGPT_VKERNEL_FD_TABLE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "vkernel/file.h"

namespace kernelgpt::vkernel {

/// Where a model's virtual descriptor numbers start. Equal bases select
/// the unified (reference) layout; distinct bases give each class its
/// own range and counter.
struct FdLayout {
  long file_base = 3;
  long socket_base = 3;

  bool unified() const { return file_base == socket_base; }
};

/// Observable shape of a model's fd table: how many descriptors of each
/// class are still open. The differential oracle compares shapes (not
/// raw descriptor values, which are layout-dependent by design).
struct FdShape {
  size_t files_open = 0;
  size_t sockets_open = 0;

  bool operator==(const FdShape& o) const {
    return files_open == o.files_open && sockets_open == o.sockets_open;
  }
  bool operator!=(const FdShape& o) const { return !(*this == o); }
};

/// One open-descriptor slot.
struct FdEntry {
  std::shared_ptr<FileHandler> handler;  ///< Null after close.
  bool is_socket = false;
};

/// Flat per-program descriptor table. Slots are allocated monotonically
/// within a program and never reused (matching the historical numbering),
/// so a closed descriptor keeps its slot with a null handler.
class FdTable {
 public:
  FdTable() = default;
  explicit FdTable(FdLayout layout) : layout_(layout) {}

  const FdLayout& layout() const { return layout_; }

  /// Installs a handler under a fresh virtual descriptor and returns it.
  long Install(std::shared_ptr<FileHandler> handler, bool is_socket) {
    long vfd;
    if (layout_.unified()) {
      vfd = layout_.file_base + static_cast<long>(entries_.size());
    } else if (is_socket) {
      vfd = layout_.socket_base + next_socket_++;
    } else {
      vfd = layout_.file_base + next_file_++;
    }
    entries_.push_back({std::move(handler), is_socket});
    vfds_.push_back(vfd);
    return vfd;
  }

  /// Slot index of a virtual descriptor; npos when it was never issued.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  size_t SlotOf(long vfd) const {
    if (layout_.unified()) {
      const size_t idx = static_cast<size_t>(vfd - layout_.file_base);
      if (vfd < layout_.file_base || idx >= entries_.size()) return kNoSlot;
      return idx;
    }
    // Split layouts translate by scan; tables hold a handful of entries
    // per program, and scan order is deterministic.
    for (size_t i = 0; i < vfds_.size(); ++i) {
      if (vfds_[i] == vfd) return i;
    }
    return kNoSlot;
  }

  FdEntry* Find(long vfd) {
    const size_t slot = SlotOf(vfd);
    return slot == kNoSlot ? nullptr : &entries_[slot];
  }
  const FdEntry* Find(long vfd) const {
    const size_t slot = SlotOf(vfd);
    return slot == kNoSlot ? nullptr : &entries_[slot];
  }

  std::vector<FdEntry>& entries() { return entries_; }
  const std::vector<FdEntry>& entries() const { return entries_; }

  bool empty() const { return entries_.empty(); }

  /// Drops all slots and restarts descriptor numbering (program reset).
  void Clear() {
    entries_.clear();
    vfds_.clear();
    next_file_ = 0;
    next_socket_ = 0;
  }

  FdShape Shape() const {
    FdShape shape;
    for (const FdEntry& entry : entries_) {
      if (!entry.handler) continue;
      if (entry.is_socket) {
        ++shape.sockets_open;
      } else {
        ++shape.files_open;
      }
    }
    return shape;
  }

 private:
  FdLayout layout_;
  std::vector<FdEntry> entries_;
  std::vector<long> vfds_;  ///< Parallel to entries_: slot -> vfd.
  long next_file_ = 0;
  long next_socket_ = 0;
};

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_FD_TABLE_H_
