/// \file
/// The virtual kernel: syscall dispatch over registered device drivers and
/// socket families, with a per-program file-descriptor table. This is the
/// fuzzing target substrate standing in for a booted Linux + QEMU setup.

#ifndef KERNELGPT_VKERNEL_KERNEL_H_
#define KERNELGPT_VKERNEL_KERNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vkernel/file.h"

namespace kernelgpt::vkernel {

/// Single-threaded virtual kernel instance.
///
/// Drivers and socket families are registered once; BeginProgram() resets
/// per-program state (fd table and module state) between fuzz programs,
/// like rebooting a lightweight VM snapshot.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // -- Registration --------------------------------------------------------

  void RegisterDevice(std::unique_ptr<DeviceDriver> driver);
  void RegisterSocketFamily(std::unique_ptr<SocketFamily> family);

  const std::vector<std::unique_ptr<DeviceDriver>>& devices() const {
    return devices_;
  }
  const std::vector<std::unique_ptr<SocketFamily>>& socket_families() const {
    return families_;
  }

  DeviceDriver* FindDeviceByPath(std::string_view path) const;
  SocketFamily* FindFamilyByDomain(uint64_t domain) const;

  // -- Program lifecycle ---------------------------------------------------

  /// Resets the fd table and per-program module state. Outside a batch
  /// window every module is reset (the legacy full reset); inside one,
  /// only modules actually touched since their last reset are — the
  /// batched executor's amortization. Both orders are observable-state
  /// equivalent because resetting an untouched module is a no-op.
  void BeginProgram();

  /// Closes all remaining descriptors (releasing driver objects).
  void EndProgram(ExecContext& ctx);

  /// Opens a batch window: BeginProgram() switches to dirty-module-only
  /// resets until EndBatch(). Call with the kernel in a pristine state
  /// (freshly booted, or after a non-batched BeginProgram/EndBatch).
  void BeginBatch();

  /// Closes the batch window and restores the pristine state with one
  /// full module reset, so any dirty-tracking miss cannot leak past a
  /// batch boundary.
  void EndBatch();

  // -- Syscalls ------------------------------------------------------------

  long Openat(std::string_view path, uint64_t flags, ExecContext& ctx);
  long Close(long fd, ExecContext& ctx);
  long Dup(long fd, ExecContext& ctx);
  long Ioctl(long fd, uint64_t cmd, Buffer* arg, ExecContext& ctx);
  long Read(long fd, Buffer* out, ExecContext& ctx);
  long Write(long fd, const Buffer& in, ExecContext& ctx);
  long Poll(long fd, ExecContext& ctx);
  long Mmap(long fd, uint64_t length, ExecContext& ctx);

  long Socket(uint64_t domain, uint64_t type, uint64_t protocol,
              ExecContext& ctx);
  long SetSockOpt(long fd, uint64_t level, uint64_t optname, const Buffer& val,
                  ExecContext& ctx);
  long GetSockOpt(long fd, uint64_t level, uint64_t optname, Buffer* val,
                  ExecContext& ctx);
  long Bind(long fd, const Buffer& addr, ExecContext& ctx);
  long Connect(long fd, const Buffer& addr, ExecContext& ctx);
  long SendTo(long fd, const Buffer& data, const Buffer& addr,
              ExecContext& ctx);
  long RecvFrom(long fd, Buffer* data, ExecContext& ctx);
  long Listen(long fd, ExecContext& ctx);
  long Accept(long fd, ExecContext& ctx);

  // -- Services for handlers ----------------------------------------------

  /// Installs a handler under a fresh descriptor (used by drivers like kvm
  /// whose ioctls create new file objects). Returns the fd.
  long InstallFile(std::shared_ptr<FileHandler> handler);

  /// Looks up an open descriptor; nullptr if invalid.
  FileHandler* LookupFd(long fd) const;

 private:
  SocketHandler* LookupSocket(long fd) const;

  /// Returns a handler to its pool when the kernel held the last
  /// reference and the handler is pooled; otherwise just drops the ref.
  void RecycleIfPooled(std::shared_ptr<FileHandler> handler);

  std::vector<std::unique_ptr<DeviceDriver>> devices_;
  std::vector<std::unique_ptr<SocketFamily>> families_;

  /// Node path -> device, built at registration so Openat resolves with
  /// one transparent lookup instead of a linear NodePath() string scan.
  /// std::less<> enables string_view lookups without a temporary string.
  std::map<std::string, std::pair<DeviceDriver*, size_t>, std::less<>>
      device_by_path_;

  /// Modules touched since their last ResetState() (indices into
  /// devices_ / families_). Drives the dirty-only reset inside batches.
  std::vector<size_t> dirty_devices_;
  std::vector<size_t> dirty_families_;
  std::vector<char> device_dirty_;
  std::vector<char> family_dirty_;
  bool in_batch_ = false;

  void MarkDeviceDirty(size_t index);
  void MarkFamilyDirty(size_t index);
  void ResetModules(bool dirty_only);

  struct OpenFileEntry {
    std::shared_ptr<FileHandler> handler;  ///< Null after close.
    bool is_socket = false;
  };

  /// Flat per-program descriptor table: files_[i] backs fd kFdBase + i.
  /// Descriptors are allocated monotonically within a program (exactly
  /// the numbering the old hash-map table produced), so lookup is a
  /// bounds check + index instead of a hash probe.
  static constexpr long kFdBase = 3;
  std::vector<OpenFileEntry> files_;

  long InstallEntry(std::shared_ptr<FileHandler> handler, bool is_socket);
};

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_KERNEL_H_
