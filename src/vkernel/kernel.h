/// \file
/// The reference virtual kernel: syscall dispatch over registered device
/// drivers and socket families, with a per-program virtual-fd table.
/// This is the fuzzing target substrate standing in for a booted Linux +
/// QEMU setup. `Kernel` implements the abstract `KernelModel` API
/// (model.h); its behavior is parameterized by a small `KernelPolicy` so
/// personalities (StrictModel — the byte-identical reference — and
/// PermissiveModel) share one engine while disagreeing observably on
/// validation strictness, errno policy, and fd-space layout.

#ifndef KERNELGPT_VKERNEL_KERNEL_H_
#define KERNELGPT_VKERNEL_KERNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vkernel/fd_table.h"
#include "vkernel/file.h"
#include "vkernel/model.h"
#include "vkernel/verrno.h"

namespace kernelgpt::vkernel {

/// The knobs a personality turns. Defaults reproduce the historical
/// (strict) kernel bit-for-bit.
struct KernelPolicy {
  std::string name = "strict";  ///< KernelModel::ModelName().
  FdLayout fd_layout;           ///< Unified base-3 layout by default.

  /// Errno for operations on descriptors that are invalid or closed.
  long bad_fd_errno = kEBADF;

  /// Lenient close: close() of an invalid/closed descriptor succeeds
  /// (returns 0) instead of failing with bad_fd_errno.
  bool close_invalid_fd_ok = false;

  /// Errno for openat() on a path no registered device claims.
  long unknown_path_errno = kENOENT;

  /// Errno for socket() with a domain no registered family claims.
  long unknown_domain_errno = kEAFNOSUPPORT;

  // -- Network-stack (vnet) semantics ---------------------------------------
  // Real kernels disagree on these lenient corners; the strict defaults
  // refuse, the permissive personality accepts, and the differential
  // oracle surfaces the disagreement as net-policy divergences.

  /// listen() on a socket already in LISTEN succeeds (backlog refresh)
  /// instead of failing with EINVAL.
  bool net_relisten_ok = false;

  /// bind() on an already-bound socket rebinds (releasing the old port)
  /// instead of failing with EINVAL.
  bool net_rebind_ok = false;

  /// bind() to a port lingering in TIME_WAIT succeeds (implicit
  /// SO_REUSEADDR) instead of failing with EADDRINUSE.
  bool net_reuse_timewait_ok = false;

  static KernelPolicy Strict() { return KernelPolicy{}; }

  /// Lenient flag/arg validation with a differing errno policy and a
  /// split fd space (files from 3, sockets from 1000) so descriptor
  /// translation is exercised, not just renamed.
  static KernelPolicy Permissive() {
    KernelPolicy p;
    p.name = "permissive";
    p.fd_layout = FdLayout{3, 1000};
    p.bad_fd_errno = kEINVAL;
    p.close_invalid_fd_ok = true;
    p.unknown_path_errno = kENODEV;
    p.unknown_domain_errno = kEINVAL;
    p.net_relisten_ok = true;
    p.net_rebind_ok = true;
    p.net_reuse_timewait_ok = true;
    return p;
  }
};

/// Single-threaded virtual kernel instance.
///
/// Drivers and socket families are registered once; BeginProgram() resets
/// per-program state (fd table and module state) between fuzz programs,
/// like rebooting a lightweight VM snapshot.
class Kernel : public KernelModel {
 public:
  Kernel() = default;
  explicit Kernel(KernelPolicy policy)
      : policy_(std::move(policy)), fds_(policy_.fd_layout) {}

  const KernelPolicy& policy() const { return policy_; }

  // -- Identity ------------------------------------------------------------

  std::string ModelName() const override { return policy_.name; }

  // -- Registration --------------------------------------------------------

  void RegisterDevice(std::unique_ptr<DeviceDriver> driver) override;
  void RegisterSocketFamily(std::unique_ptr<SocketFamily> family) override;

  const std::vector<std::unique_ptr<DeviceDriver>>& devices() const override {
    return devices_;
  }
  const std::vector<std::unique_ptr<SocketFamily>>& socket_families()
      const override {
    return families_;
  }

  DeviceDriver* FindDeviceByPath(std::string_view path) const override;
  SocketFamily* FindFamilyByDomain(uint64_t domain) const override;

  // -- Program lifecycle ---------------------------------------------------

  /// Resets the fd table and per-program module state. Outside a batch
  /// window every module is reset (the legacy full reset); inside one,
  /// only modules actually touched since their last reset are — the
  /// batched executor's amortization. Both orders are observable-state
  /// equivalent because resetting an untouched module is a no-op.
  void BeginProgram() override;

  /// Closes all remaining descriptors (releasing driver objects).
  void EndProgram(ExecContext& ctx) override;

  /// Opens a batch window: BeginProgram() switches to dirty-module-only
  /// resets until EndBatch(). Must be called with the kernel pristine
  /// (freshly booted, or after a completed program / closed batch);
  /// misuse — a nested batch, or a batch opened mid-program while
  /// descriptors are live — is enforced with a cheap always-on check
  /// that throws std::logic_error (fault site "vkernel.begin_batch").
  void BeginBatch() override;

  /// Closes the batch window and restores the pristine state with one
  /// full module reset, so any dirty-tracking miss cannot leak past a
  /// batch boundary.
  void EndBatch() override;

  // -- Syscalls ------------------------------------------------------------

  SyscallResult Openat(std::string_view path, uint64_t flags,
                       ExecContext& ctx) override;
  SyscallResult Close(long fd, ExecContext& ctx) override;
  SyscallResult Dup(long fd, ExecContext& ctx) override;
  SyscallResult Ioctl(long fd, uint64_t cmd, Buffer* arg,
                      ExecContext& ctx) override;
  SyscallResult Read(long fd, Buffer* out, ExecContext& ctx) override;
  SyscallResult Write(long fd, const Buffer& in, ExecContext& ctx) override;
  SyscallResult Poll(long fd, ExecContext& ctx) override;
  SyscallResult Mmap(long fd, uint64_t length, ExecContext& ctx) override;

  SyscallResult Socket(uint64_t domain, uint64_t type, uint64_t protocol,
                       ExecContext& ctx) override;
  SyscallResult SetSockOpt(long fd, uint64_t level, uint64_t optname,
                           const Buffer& val, ExecContext& ctx) override;
  SyscallResult GetSockOpt(long fd, uint64_t level, uint64_t optname,
                           Buffer* val, ExecContext& ctx) override;
  SyscallResult Bind(long fd, const Buffer& addr, ExecContext& ctx) override;
  SyscallResult Connect(long fd, const Buffer& addr,
                        ExecContext& ctx) override;
  SyscallResult SendTo(long fd, const Buffer& data, const Buffer& addr,
                       ExecContext& ctx) override;
  SyscallResult RecvFrom(long fd, Buffer* data, ExecContext& ctx) override;
  SyscallResult Listen(long fd, ExecContext& ctx) override;
  SyscallResult Accept(long fd, ExecContext& ctx) override;

  // -- Services for handlers ----------------------------------------------

  long InstallFile(std::shared_ptr<FileHandler> handler) override;
  long InstallSocket(std::shared_ptr<SocketHandler> handler) override;
  FileHandler* LookupFd(long fd) const override;
  FdShape FdTableShape() const override { return fds_.Shape(); }
  std::string ModuleStateShape() const override;

 private:
  SocketHandler* LookupSocket(long fd) const;

  /// Returns a handler to its pool when the kernel held the last
  /// reference and the handler is pooled; otherwise just drops the ref.
  void RecycleIfPooled(std::shared_ptr<FileHandler> handler);

  KernelPolicy policy_;

  std::vector<std::unique_ptr<DeviceDriver>> devices_;
  std::vector<std::unique_ptr<SocketFamily>> families_;

  /// Node path -> device, built at registration so Openat resolves with
  /// one transparent lookup instead of a linear NodePath() string scan.
  /// std::less<> enables string_view lookups without a temporary string.
  std::map<std::string, std::pair<DeviceDriver*, size_t>, std::less<>>
      device_by_path_;

  /// Modules touched since their last ResetState() (indices into
  /// devices_ / families_). Drives the dirty-only reset inside batches.
  std::vector<size_t> dirty_devices_;
  std::vector<size_t> dirty_families_;
  std::vector<char> device_dirty_;
  std::vector<char> family_dirty_;
  bool in_batch_ = false;

  void MarkDeviceDirty(size_t index);
  void MarkFamilyDirty(size_t index);
  void ResetModules(bool dirty_only);

  /// Per-program descriptor table; numbering is owned by the policy's
  /// FdLayout (the strict unified layout reproduces the historical
  /// monotonic fds starting at 3).
  FdTable fds_;

  long InstallEntry(std::shared_ptr<FileHandler> handler, bool is_socket);
};

/// The reference personality: `Kernel`'s defaults, unchanged semantics.
using StrictModel = Kernel;

/// The lenient personality (KernelPolicy::Permissive()): same drivers,
/// same engine, observably different validation/errno/fd-space choices —
/// the second party of the differential oracle.
class PermissiveModel : public Kernel {
 public:
  PermissiveModel() : Kernel(KernelPolicy::Permissive()) {}
};

/// Factories for the two built-in personalities.
std::unique_ptr<KernelModel> MakeStrictModel();
std::unique_ptr<KernelModel> MakePermissiveModel();

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_KERNEL_H_
