/// \file
/// The virtual kernel: syscall dispatch over registered device drivers and
/// socket families, with a per-program file-descriptor table. This is the
/// fuzzing target substrate standing in for a booted Linux + QEMU setup.

#ifndef KERNELGPT_VKERNEL_KERNEL_H_
#define KERNELGPT_VKERNEL_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vkernel/file.h"

namespace kernelgpt::vkernel {

/// Single-threaded virtual kernel instance.
///
/// Drivers and socket families are registered once; BeginProgram() resets
/// per-program state (fd table and module state) between fuzz programs,
/// like rebooting a lightweight VM snapshot.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // -- Registration --------------------------------------------------------

  void RegisterDevice(std::unique_ptr<DeviceDriver> driver);
  void RegisterSocketFamily(std::unique_ptr<SocketFamily> family);

  const std::vector<std::unique_ptr<DeviceDriver>>& devices() const {
    return devices_;
  }
  const std::vector<std::unique_ptr<SocketFamily>>& socket_families() const {
    return families_;
  }

  DeviceDriver* FindDeviceByPath(const std::string& path) const;
  SocketFamily* FindFamilyByDomain(uint64_t domain) const;

  // -- Program lifecycle ---------------------------------------------------

  /// Resets the fd table and every module's per-program state.
  void BeginProgram();

  /// Closes all remaining descriptors (releasing driver objects).
  void EndProgram(ExecContext& ctx);

  // -- Syscalls ------------------------------------------------------------

  long Openat(const std::string& path, uint64_t flags, ExecContext& ctx);
  long Close(long fd, ExecContext& ctx);
  long Dup(long fd, ExecContext& ctx);
  long Ioctl(long fd, uint64_t cmd, Buffer* arg, ExecContext& ctx);
  long Read(long fd, Buffer* out, ExecContext& ctx);
  long Write(long fd, const Buffer& in, ExecContext& ctx);
  long Poll(long fd, ExecContext& ctx);
  long Mmap(long fd, uint64_t length, ExecContext& ctx);

  long Socket(uint64_t domain, uint64_t type, uint64_t protocol,
              ExecContext& ctx);
  long SetSockOpt(long fd, uint64_t level, uint64_t optname, const Buffer& val,
                  ExecContext& ctx);
  long GetSockOpt(long fd, uint64_t level, uint64_t optname, Buffer* val,
                  ExecContext& ctx);
  long Bind(long fd, const Buffer& addr, ExecContext& ctx);
  long Connect(long fd, const Buffer& addr, ExecContext& ctx);
  long SendTo(long fd, const Buffer& data, const Buffer& addr,
              ExecContext& ctx);
  long RecvFrom(long fd, Buffer* data, ExecContext& ctx);
  long Listen(long fd, ExecContext& ctx);
  long Accept(long fd, ExecContext& ctx);

  // -- Services for handlers ----------------------------------------------

  /// Installs a handler under a fresh descriptor (used by drivers like kvm
  /// whose ioctls create new file objects). Returns the fd.
  long InstallFile(std::shared_ptr<FileHandler> handler);

  /// Looks up an open descriptor; nullptr if invalid.
  FileHandler* LookupFd(long fd) const;

 private:
  SocketHandler* LookupSocket(long fd) const;

  std::vector<std::unique_ptr<DeviceDriver>> devices_;
  std::vector<std::unique_ptr<SocketFamily>> families_;

  struct OpenFileEntry {
    std::shared_ptr<FileHandler> handler;
    bool is_socket = false;
  };
  std::unordered_map<long, OpenFileEntry> fd_table_;
  long next_fd_ = 3;
};

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_KERNEL_H_
