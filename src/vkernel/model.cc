#include "vkernel/model.h"

namespace kernelgpt::vkernel {

SyscallResult
KernelModel::Syscall(ModelOp op, const SyscallArgs& args, ExecContext& ctx)
{
  static const Buffer kEmpty;
  const Buffer& in = args.in ? *args.in : kEmpty;
  const Buffer& addr = args.addr ? *args.addr : kEmpty;

  switch (op) {
    case ModelOp::kOpenat:
      return Openat(args.path, args.a, ctx);
    case ModelOp::kClose:
      return Close(args.fd, ctx);
    case ModelOp::kDup:
      return Dup(args.fd, ctx);
    case ModelOp::kIoctl:
      return Ioctl(args.fd, args.a, args.io, ctx);
    case ModelOp::kRead:
      return Read(args.fd, args.io, ctx);
    case ModelOp::kWrite:
      return Write(args.fd, in, ctx);
    case ModelOp::kPoll:
      return Poll(args.fd, ctx);
    case ModelOp::kMmap:
      return Mmap(args.fd, args.a, ctx);
    case ModelOp::kSocket:
      return Socket(args.a, args.b, args.c, ctx);
    case ModelOp::kSetSockOpt:
      return SetSockOpt(args.fd, args.a, args.b, in, ctx);
    case ModelOp::kGetSockOpt:
      return GetSockOpt(args.fd, args.a, args.b, args.io, ctx);
    case ModelOp::kBind:
      return Bind(args.fd, addr, ctx);
    case ModelOp::kConnect:
      return Connect(args.fd, addr, ctx);
    case ModelOp::kSendTo:
      return SendTo(args.fd, in, addr, ctx);
    case ModelOp::kRecvFrom:
      return RecvFrom(args.fd, args.io, ctx);
    case ModelOp::kListen:
      return Listen(args.fd, ctx);
    case ModelOp::kAccept:
      return Accept(args.fd, ctx);
  }
  return SyscallResult::Err(kENOSYS);
}

}  // namespace kernelgpt::vkernel
