/// \file
/// Errno values used by the virtual kernel. Syscall handlers return
/// negative errno on failure, mirroring the Linux in-kernel convention.

#ifndef KERNELGPT_VKERNEL_VERRNO_H_
#define KERNELGPT_VKERNEL_VERRNO_H_

namespace kernelgpt::vkernel {

// Values match Linux asm-generic/errno-base.h so rendered source and
// runtime agree on the numbers.
inline constexpr long kEPERM = 1;
inline constexpr long kENOENT = 2;
inline constexpr long kEBADF = 9;
inline constexpr long kEAGAIN = 11;
inline constexpr long kENOMEM = 12;
inline constexpr long kEFAULT = 14;
inline constexpr long kEBUSY = 16;
inline constexpr long kENODEV = 19;
inline constexpr long kEINVAL = 22;
inline constexpr long kENOTTY = 25;
inline constexpr long kENOSPC = 28;
inline constexpr long kENOSYS = 38;
inline constexpr long kEPIPE = 32;
inline constexpr long kEDESTADDRREQ = 89;
inline constexpr long kENOPROTOOPT = 92;
inline constexpr long kEAFNOSUPPORT = 97;
inline constexpr long kEOPNOTSUPP = 95;
inline constexpr long kEADDRINUSE = 98;
inline constexpr long kEISCONN = 106;
inline constexpr long kENOTCONN = 107;
inline constexpr long kECONNREFUSED = 111;

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_VERRNO_H_
