/// \file
/// The vkernel public API: an abstract KernelModel that the fuzzing
/// layers (executor, orchestrator, distiller, session) program against,
/// so the same fuzz program can run on different kernel personalities
/// (strict vs. permissive semantics, model-vN vs. model-vN+1) and
/// divergence becomes a finding — the klee-mc SysModel pattern.
///
/// A model exposes boot-time registration, the program/batch lifecycle,
/// typed syscall wrappers returning SyscallResult, and one uniform
/// `Syscall(op, args, ctx)` entry the opcode dispatcher drives. Each
/// model owns its virtual-fd space through an FdTable (fd_table.h).

#ifndef KERNELGPT_VKERNEL_MODEL_H_
#define KERNELGPT_VKERNEL_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vkernel/fd_table.h"
#include "vkernel/file.h"

namespace kernelgpt::vkernel {

/// Outcome of one syscall: the return value userspace sees plus the
/// virtual errno, replacing the old negative-errno `long` encoding.
/// Invariants: `verrno == 0` iff the call succeeded, and `raw()` equals
/// the value the old encoding produced (so success ⇔ raw() >= 0).
struct SyscallResult {
  long retval = 0;  ///< Userspace return value (negative errno on failure).
  long verrno = 0;  ///< 0 on success, positive errno on failure.

  bool ok() const { return verrno == 0; }

  /// The legacy negative-errno encoding (handler/driver ABI).
  long raw() const { return verrno != 0 ? -verrno : retval; }

  static SyscallResult Ok(long value) { return {value, 0}; }
  static SyscallResult Err(long err) { return {-err, err}; }

  /// Wraps a legacy negative-errno return value.
  static SyscallResult FromRaw(long rc) {
    return rc < 0 ? SyscallResult{rc, -rc} : SyscallResult{rc, 0};
  }

  bool operator==(const SyscallResult& o) const {
    return retval == o.retval && verrno == o.verrno;
  }
  bool operator!=(const SyscallResult& o) const { return !(*this == o); }
};

/// Operation selector for the uniform Syscall() entry. The executor maps
/// spec-level opcodes onto these (open/openat collapse to kOpenat,
/// sendmsg to kSendTo with empty buffers).
enum class ModelOp : uint8_t {
  kOpenat,
  kClose,
  kDup,
  kIoctl,
  kRead,
  kWrite,
  kPoll,
  kMmap,
  kSocket,
  kSetSockOpt,
  kGetSockOpt,
  kBind,
  kConnect,
  kSendTo,
  kRecvFrom,
  kListen,
  kAccept,
};

/// Argument pack for the uniform Syscall() entry. Which fields an op
/// consumes mirrors the typed wrapper it dispatches to; unused fields
/// are ignored. Buffer pointers borrow caller storage for the call.
struct SyscallArgs {
  std::string_view path;     ///< kOpenat node path.
  long fd = -1;              ///< Descriptor operand.
  uint64_t a = 0;            ///< flags / cmd / length / domain / level.
  uint64_t b = 0;            ///< type / optname.
  uint64_t c = 0;            ///< protocol.
  const Buffer* in = nullptr;   ///< Input bytes (write / setsockopt / sendto).
  Buffer* io = nullptr;         ///< Kernel-written bytes (read / getsockopt /
                                ///< recvfrom / ioctl arg; may be null).
  const Buffer* addr = nullptr;  ///< Socket address (bind/connect/sendto).
};

/// Abstract kernel personality. Single-threaded, like the concrete
/// kernel it generalizes: one model instance per worker.
///
/// Handlers reach their execution context through `context()` instead of
/// an `ExecContext&` threaded through every hook — implementations must
/// publish the active context (set_context) on every syscall entry and
/// on EndProgram, so a personality cannot forget to plumb it.
class KernelModel {
 public:
  KernelModel() = default;
  KernelModel(const KernelModel&) = delete;
  KernelModel& operator=(const KernelModel&) = delete;
  virtual ~KernelModel() = default;

  // -- Identity ------------------------------------------------------------

  /// Stable personality name ("strict", "permissive", ...). Recorded in
  /// differential reports and snapshot fingerprints.
  virtual std::string ModelName() const = 0;

  // -- Registration --------------------------------------------------------

  virtual void RegisterDevice(std::unique_ptr<DeviceDriver> driver) = 0;
  virtual void RegisterSocketFamily(std::unique_ptr<SocketFamily> family) = 0;

  virtual const std::vector<std::unique_ptr<DeviceDriver>>& devices()
      const = 0;
  virtual const std::vector<std::unique_ptr<SocketFamily>>& socket_families()
      const = 0;

  virtual DeviceDriver* FindDeviceByPath(std::string_view path) const = 0;
  virtual SocketFamily* FindFamilyByDomain(uint64_t domain) const = 0;

  // -- Program lifecycle ---------------------------------------------------

  virtual void BeginProgram() = 0;
  virtual void EndProgram(ExecContext& ctx) = 0;
  virtual void BeginBatch() = 0;
  virtual void EndBatch() = 0;

  // -- Typed syscalls ------------------------------------------------------

  virtual SyscallResult Openat(std::string_view path, uint64_t flags,
                               ExecContext& ctx) = 0;
  virtual SyscallResult Close(long fd, ExecContext& ctx) = 0;
  virtual SyscallResult Dup(long fd, ExecContext& ctx) = 0;
  virtual SyscallResult Ioctl(long fd, uint64_t cmd, Buffer* arg,
                              ExecContext& ctx) = 0;
  virtual SyscallResult Read(long fd, Buffer* out, ExecContext& ctx) = 0;
  virtual SyscallResult Write(long fd, const Buffer& in, ExecContext& ctx) = 0;
  virtual SyscallResult Poll(long fd, ExecContext& ctx) = 0;
  virtual SyscallResult Mmap(long fd, uint64_t length, ExecContext& ctx) = 0;

  virtual SyscallResult Socket(uint64_t domain, uint64_t type,
                               uint64_t protocol, ExecContext& ctx) = 0;
  virtual SyscallResult SetSockOpt(long fd, uint64_t level, uint64_t optname,
                                   const Buffer& val, ExecContext& ctx) = 0;
  virtual SyscallResult GetSockOpt(long fd, uint64_t level, uint64_t optname,
                                   Buffer* val, ExecContext& ctx) = 0;
  virtual SyscallResult Bind(long fd, const Buffer& addr, ExecContext& ctx) = 0;
  virtual SyscallResult Connect(long fd, const Buffer& addr,
                                ExecContext& ctx) = 0;
  virtual SyscallResult SendTo(long fd, const Buffer& data, const Buffer& addr,
                               ExecContext& ctx) = 0;
  virtual SyscallResult RecvFrom(long fd, Buffer* data, ExecContext& ctx) = 0;
  virtual SyscallResult Listen(long fd, ExecContext& ctx) = 0;
  virtual SyscallResult Accept(long fd, ExecContext& ctx) = 0;

  // -- Uniform entry -------------------------------------------------------

  /// Dispatches `op` to the typed wrapper above. The executor's opcode
  /// hot path drives this; personalities only implement the wrappers.
  SyscallResult Syscall(ModelOp op, const SyscallArgs& args, ExecContext& ctx);

  // -- Services for handlers ----------------------------------------------

  /// Installs a handler under a fresh descriptor (used by drivers like
  /// kvm whose ioctls create new file objects). Returns the vfd.
  virtual long InstallFile(std::shared_ptr<FileHandler> handler) = 0;

  /// Installs a socket handler under a fresh descriptor in the socket
  /// fd space (used by accept() to issue the peer of an established
  /// connection). Returns the vfd.
  virtual long InstallSocket(std::shared_ptr<SocketHandler> handler) = 0;

  /// Looks up an open descriptor; nullptr if invalid.
  virtual FileHandler* LookupFd(long fd) const = 0;

  /// Observable fd-table shape (open file/socket counts). Compared by
  /// the differential oracle at end of program.
  virtual FdShape FdTableShape() const = 0;

  /// Normalized per-module/per-socket state summary, compared by the
  /// differential oracle after fd shapes. Walks descriptors in slot
  /// (install) order — which is identical across fd layouts — so fd
  /// numbering differences stay non-divergent; modules with no
  /// observable state contribute nothing. Empty when nothing stateful
  /// is open.
  virtual std::string ModuleStateShape() const { return std::string(); }

  /// The execution context of the in-flight syscall. Only valid while a
  /// syscall or EndProgram is on the stack (which is the only time
  /// handler hooks run).
  ExecContext& context() const { return *ctx_; }

 protected:
  /// Publishes the active context for handler hooks; implementations
  /// call this on every public syscall entry and EndProgram.
  void set_context(ExecContext* ctx) { ctx_ = ctx; }

 private:
  ExecContext* ctx_ = nullptr;
};

/// Builds a fresh, unbooted model instance; workers that need their own
/// kernel (orchestrator shards, diff runners) call this per worker.
using ModelFactory = std::function<std::unique_ptr<KernelModel>()>;

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_MODEL_H_
