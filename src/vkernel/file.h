/// \file
/// File and socket handler interfaces of the virtual kernel — the analog
/// of `struct file_operations` and `struct proto_ops` instances bound to
/// an open file descriptor.

#ifndef KERNELGPT_VKERNEL_FILE_H_
#define KERNELGPT_VKERNEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vkernel/coverage.h"
#include "vkernel/verrno.h"

namespace kernelgpt::vkernel {

class KernelModel;

/// Userspace memory attached to a pointer argument. Direction handling is
/// the executor's business; handlers read and write bytes freely.
///
/// A Buffer either owns its storage (`bytes`) or is a zero-copy view over
/// caller-owned memory (the executor wraps in-direction argument bytes
/// this way, so the hot path never deep-copies them). Reads go through
/// `data()`/`size()` and work on both forms; the first write materializes
/// a view into owned storage (copy-on-write), so handler semantics are
/// unchanged. The viewed memory must outlive the Buffer.
struct Buffer {
  std::vector<uint8_t> bytes;  ///< Owned storage; empty while viewing.

  Buffer() = default;

  /// Wraps caller-owned memory without copying.
  static Buffer View(const uint8_t* data, size_t size) {
    Buffer b;
    b.view_data_ = data;
    b.view_size_ = size;
    return b;
  }
  static Buffer View(const std::vector<uint8_t>& v) {
    return View(v.data(), v.size());
  }

  bool viewing() const { return view_data_ != nullptr; }
  size_t size() const { return view_data_ ? view_size_ : bytes.size(); }
  bool empty() const { return size() == 0; }
  const uint8_t* data() const {
    return view_data_ ? view_data_ : bytes.data();
  }

  /// Resizes the owned storage, copying a view's contents first.
  void Resize(size_t n) {
    Materialize();
    bytes.resize(n, 0);
  }

  /// Copies a view into owned storage; no-op when already owning.
  void Materialize() {
    if (!view_data_) return;
    bytes.assign(view_data_, view_data_ + view_size_);
    view_data_ = nullptr;
    view_size_ = 0;
  }

  /// Reads a little-endian scalar at `offset`; returns 0 on short reads.
  uint64_t ReadScalar(size_t offset, size_t size) const;

  /// Writes a little-endian scalar, growing the buffer if needed.
  void WriteScalar(size_t offset, size_t size, uint64_t value);

 private:
  const uint8_t* view_data_ = nullptr;
  size_t view_size_ = 0;
};

/// Per-execution context: carries coverage and crash state. A sanitizer
/// "report" (KASAN/UBSAN/kmemleak analog) is a call to Crash().
class ExecContext {
 public:
  explicit ExecContext(Coverage* coverage) : coverage_(coverage) {}

  /// Records a covered basic block.
  void Cover(uint64_t block_id) {
    if (coverage_ && coverage_->Hit(block_id)) ++new_hits_;
  }

  /// Blocks newly added to the attached coverage during this context's
  /// lifetime. Lets the executor hit the accumulated coverage directly
  /// instead of collecting into a per-program set and merging.
  size_t new_hits() const { return new_hits_; }

  /// Fires a sanitizer report; execution of the program stops after the
  /// current syscall returns.
  void Crash(std::string title) {
    if (!crashed_) {
      crashed_ = true;
      crash_title_ = std::move(title);
    }
  }

  bool crashed() const { return crashed_; }
  const std::string& crash_title() const { return crash_title_; }

  Coverage* coverage() { return coverage_; }

 private:
  Coverage* coverage_;
  size_t new_hits_ = 0;
  bool crashed_ = false;
  std::string crash_title_;
};

class FileHandler;

/// Recycling sink for pooled handlers. A driver that pools its handler
/// objects (to cut per-open allocations on the fuzzing hot path) tags
/// each handler with its recycler; the kernel hands the handler back
/// when the last descriptor referencing it goes away instead of letting
/// it be destroyed. Implementations must fully re-initialize a recycled
/// handler before reissuing it, so pooling is observationally identical
/// to fresh allocation.
class HandlerRecycler {
 public:
  virtual ~HandlerRecycler() = default;
  virtual void Recycle(std::shared_ptr<FileHandler> handler) = 0;
};

/// Handler bound to one open file descriptor.
///
/// Hooks receive the owning KernelModel; the per-execution context is
/// reached through `kernel.context()` (valid for the hook's duration)
/// instead of an `ExecContext&` threaded through every signature, so a
/// new personality cannot forget to plumb it.
class FileHandler {
 public:
  virtual ~FileHandler() = default;

  /// Pool this handler returns to when its last kernel reference drops;
  /// nullptr (the default) means plain destruction.
  HandlerRecycler* recycler() const { return recycler_; }
  void set_recycler(HandlerRecycler* recycler) { recycler_ = recycler; }

  /// ioctl(fd, cmd, arg). `arg` may be nullptr when the spec passes a
  /// scalar third argument.
  virtual long Ioctl(uint64_t cmd, Buffer* arg, KernelModel& kernel) {
    (void)cmd;
    (void)arg;
    (void)kernel;
    return -kENOTTY;
  }

  virtual long Read(Buffer* out, KernelModel& kernel) {
    (void)out;
    (void)kernel;
    return -kENOSYS;
  }

  virtual long Write(const Buffer& in, KernelModel& kernel) {
    (void)in;
    (void)kernel;
    return -kENOSYS;
  }

  virtual long Poll(KernelModel& kernel) {
    (void)kernel;
    return 0;
  }

  virtual long Mmap(uint64_t length, KernelModel& kernel) {
    (void)length;
    (void)kernel;
    return -kENOSYS;
  }

  /// Called when the last descriptor referencing the file closes.
  virtual void Release(KernelModel& kernel) { (void)kernel; }

  /// Normalized observable state of this handler for the differential
  /// oracle's module-state comparison (e.g. "tcp:ESTABLISHED lp=5").
  /// Must be deterministic and free of layout-dependent values (fd
  /// numbers, addresses). Empty (the default) means "no observable
  /// state" and contributes nothing to the shape.
  virtual std::string StateBrief() const { return std::string(); }

 private:
  HandlerRecycler* recycler_ = nullptr;
};

/// Handler bound to one open socket.
class SocketHandler : public FileHandler {
 public:
  virtual long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                          KernelModel& kernel) {
    (void)level;
    (void)optname;
    (void)val;
    (void)kernel;
    return -kENOPROTOOPT;
  }

  virtual long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                          KernelModel& kernel) {
    (void)level;
    (void)optname;
    (void)val;
    (void)kernel;
    return -kENOPROTOOPT;
  }

  virtual long Bind(const Buffer& addr, KernelModel& kernel) {
    (void)addr;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Connect(const Buffer& addr, KernelModel& kernel) {
    (void)addr;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long SendTo(const Buffer& data, const Buffer& addr,
                      KernelModel& kernel) {
    (void)data;
    (void)addr;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long RecvFrom(Buffer* data, KernelModel& kernel) {
    (void)data;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Listen(KernelModel& kernel) {
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Accept(KernelModel& kernel) {
    (void)kernel;
    return -kEOPNOTSUPP;
  }
};

/// A registered character-device driver.
class DeviceDriver {
 public:
  virtual ~DeviceDriver() = default;

  /// Short module name, e.g. "dm".
  virtual std::string Name() const = 0;

  /// Device node path userspace opens, e.g. "/dev/mapper/control".
  virtual std::string NodePath() const = 0;

  /// open() on the node; returns the per-file handler or nullptr with a
  /// negative errno in `*err`. Returned as shared_ptr so pooled drivers
  /// can reuse both the handler object and its control block across
  /// opens (the kernel's fd table is shared_ptr-based for dup()).
  virtual std::shared_ptr<FileHandler> Open(KernelModel& kernel,
                                            long* err) = 0;

  /// Called between fuzz programs to reset module-global state.
  virtual void ResetState() {}
};

/// A registered socket family (protocol module).
class SocketFamily {
 public:
  virtual ~SocketFamily() = default;

  /// Short module name, e.g. "rds".
  virtual std::string Name() const = 0;

  /// AF_* domain value this family is registered under.
  virtual uint64_t Domain() const = 0;

  /// socket(domain, type, protocol). shared_ptr for the same pooling
  /// reasons as DeviceDriver::Open.
  virtual std::shared_ptr<SocketHandler> Create(uint64_t type,
                                                uint64_t protocol,
                                                KernelModel& kernel,
                                                long* err) = 0;

  /// Called between fuzz programs to reset module-global state.
  virtual void ResetState() {}

  /// Normalized observable module-global state (bound-port tables,
  /// TIME_WAIT sets...) for the differential oracle. Same rules as
  /// FileHandler::StateBrief: deterministic, layout-independent, empty
  /// when there is nothing to observe.
  virtual std::string StateBrief() const { return std::string(); }
};

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_FILE_H_
