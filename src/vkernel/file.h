/// \file
/// File and socket handler interfaces of the virtual kernel — the analog
/// of `struct file_operations` and `struct proto_ops` instances bound to
/// an open file descriptor.

#ifndef KERNELGPT_VKERNEL_FILE_H_
#define KERNELGPT_VKERNEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vkernel/coverage.h"
#include "vkernel/verrno.h"

namespace kernelgpt::vkernel {

class Kernel;

/// Userspace memory attached to a pointer argument. Direction handling is
/// the executor's business; handlers read and write bytes freely.
struct Buffer {
  std::vector<uint8_t> bytes;

  /// Reads a little-endian scalar at `offset`; returns 0 on short reads.
  uint64_t ReadScalar(size_t offset, size_t size) const;

  /// Writes a little-endian scalar, growing the buffer if needed.
  void WriteScalar(size_t offset, size_t size, uint64_t value);
};

/// Per-execution context: carries coverage and crash state. A sanitizer
/// "report" (KASAN/UBSAN/kmemleak analog) is a call to Crash().
class ExecContext {
 public:
  explicit ExecContext(Coverage* coverage) : coverage_(coverage) {}

  /// Records a covered basic block.
  void Cover(uint64_t block_id) {
    if (coverage_) coverage_->Hit(block_id);
  }

  /// Fires a sanitizer report; execution of the program stops after the
  /// current syscall returns.
  void Crash(std::string title) {
    if (!crashed_) {
      crashed_ = true;
      crash_title_ = std::move(title);
    }
  }

  bool crashed() const { return crashed_; }
  const std::string& crash_title() const { return crash_title_; }

  Coverage* coverage() { return coverage_; }

 private:
  Coverage* coverage_;
  bool crashed_ = false;
  std::string crash_title_;
};

/// Handler bound to one open file descriptor.
class FileHandler {
 public:
  virtual ~FileHandler() = default;

  /// ioctl(fd, cmd, arg). `arg` may be nullptr when the spec passes a
  /// scalar third argument.
  virtual long Ioctl(uint64_t cmd, Buffer* arg, ExecContext& ctx,
                     Kernel& kernel) {
    (void)cmd;
    (void)arg;
    (void)ctx;
    (void)kernel;
    return -kENOTTY;
  }

  virtual long Read(Buffer* out, ExecContext& ctx) {
    (void)out;
    (void)ctx;
    return -kENOSYS;
  }

  virtual long Write(const Buffer& in, ExecContext& ctx) {
    (void)in;
    (void)ctx;
    return -kENOSYS;
  }

  virtual long Poll(ExecContext& ctx) {
    (void)ctx;
    return 0;
  }

  virtual long Mmap(uint64_t length, ExecContext& ctx) {
    (void)length;
    (void)ctx;
    return -kENOSYS;
  }

  /// Called when the last descriptor referencing the file closes.
  virtual void Release(ExecContext& ctx, Kernel& kernel) {
    (void)ctx;
    (void)kernel;
  }
};

/// Handler bound to one open socket.
class SocketHandler : public FileHandler {
 public:
  virtual long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                          ExecContext& ctx, Kernel& kernel) {
    (void)level;
    (void)optname;
    (void)val;
    (void)ctx;
    (void)kernel;
    return -kENOPROTOOPT;
  }

  virtual long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                          ExecContext& ctx, Kernel& kernel) {
    (void)level;
    (void)optname;
    (void)val;
    (void)ctx;
    (void)kernel;
    return -kENOPROTOOPT;
  }

  virtual long Bind(const Buffer& addr, ExecContext& ctx, Kernel& kernel) {
    (void)addr;
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Connect(const Buffer& addr, ExecContext& ctx, Kernel& kernel) {
    (void)addr;
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long SendTo(const Buffer& data, const Buffer& addr, ExecContext& ctx,
                      Kernel& kernel) {
    (void)data;
    (void)addr;
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long RecvFrom(Buffer* data, ExecContext& ctx, Kernel& kernel) {
    (void)data;
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Listen(ExecContext& ctx, Kernel& kernel) {
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }

  virtual long Accept(ExecContext& ctx, Kernel& kernel) {
    (void)ctx;
    (void)kernel;
    return -kEOPNOTSUPP;
  }
};

/// A registered character-device driver.
class DeviceDriver {
 public:
  virtual ~DeviceDriver() = default;

  /// Short module name, e.g. "dm".
  virtual std::string Name() const = 0;

  /// Device node path userspace opens, e.g. "/dev/mapper/control".
  virtual std::string NodePath() const = 0;

  /// open() on the node; returns the per-file handler or nullptr with a
  /// negative errno in `*err`.
  virtual std::unique_ptr<FileHandler> Open(ExecContext& ctx, Kernel& kernel,
                                            long* err) = 0;

  /// Called between fuzz programs to reset module-global state.
  virtual void ResetState() {}
};

/// A registered socket family (protocol module).
class SocketFamily {
 public:
  virtual ~SocketFamily() = default;

  /// Short module name, e.g. "rds".
  virtual std::string Name() const = 0;

  /// AF_* domain value this family is registered under.
  virtual uint64_t Domain() const = 0;

  /// socket(domain, type, protocol).
  virtual std::unique_ptr<SocketHandler> Create(uint64_t type,
                                                uint64_t protocol,
                                                ExecContext& ctx,
                                                Kernel& kernel, long* err) = 0;

  /// Called between fuzz programs to reset module-global state.
  virtual void ResetState() {}
};

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_FILE_H_
