/// \file
/// Basic-block coverage collection — the virtual kernel's equivalent of
/// KCOV. Every validation branch and deep path in the driver runtime has a
/// stable 64-bit block id; experiments compare sets of covered ids.
///
/// Storage is a two-level dense structure: block ids are split into a page
/// key (high bits) and a bit index (low bits), and each page is a 256-bit
/// bitmap. Ids built with MakeBlockId share their module hash in the page
/// key, so one module's blocks cluster into densely packed pages.
/// Arbitrary ids (e.g. raw hashes) still work — they just land
/// one-per-page, which degrades to per-id cost, not worse.
///
/// Hot-path layout (PR 9): pages live in two parallel vectors physically
/// sorted by page key. Merge/CountNotIn/CoversAll are merge-joins over
/// the two contiguous key arrays — no hashing, no pointer chasing — with
/// the whole join loop runtime-dispatched between an AVX2 arm (one
/// 256-bit register per page) and the portable unrolled-scalar reference
/// (hotpath_test pins the two arms bit-identical). Pages missing from the
/// destination are batch-inserted after the join, so a merge is O(pages)
/// even when it grows the set. Hit() serves the MakeBlockId clustering
/// with a one-entry last-page cache; only a page switch pays the
/// O(log pages) binary search.

#ifndef KERNELGPT_VKERNEL_COVERAGE_H_
#define KERNELGPT_VKERNEL_COVERAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace kernelgpt::vkernel {

/// The page-kernel dispatch arms. kSimd is AVX2 (one 256-bit register per
/// page); kScalar is the unrolled 4x-u64 reference implementation every
/// other arm must match bit-for-bit.
enum class CoverageArm { kScalar, kSimd };

/// True when this CPU can run the SIMD arm.
bool CoverageSimdAvailable();

/// Forces a dispatch arm (differential tests pin SIMD == scalar; the
/// KERNELGPT_COVERAGE_ARM=scalar|simd|auto env var routes through here).
/// Requesting kSimd without CPU support keeps the scalar arm. Returns the
/// arm actually selected. Not thread-safe against in-flight merges — flip
/// it only while no Coverage operation is running.
CoverageArm SetCoverageArm(CoverageArm arm);

/// Restores the default policy: SIMD when available, else scalar.
CoverageArm ResetCoverageArm();

/// The arm Merge/CountNotIn currently dispatch to.
CoverageArm ActiveCoverageArm();

/// A set of covered basic-block ids.
class Coverage {
 public:
  /// Records one block hit. Returns true if the block was new.
  bool Hit(uint64_t block_id) {
    const uint64_t key = block_id >> kPageShift;
    uint64_t* page =
        key == cached_key_ ? pages_[cached_pos_].data() : SlotFor(key);
    uint64_t& word = page[(block_id & kPageMask) >> 6];
    const uint64_t bit = 1ULL << (block_id & 63);
    if (word & bit) return false;
    word |= bit;
    ++count_;
    return true;
  }

  /// Number of distinct blocks covered.
  size_t Count() const { return count_; }

  bool Contains(uint64_t block_id) const;

  /// Merges `other` into this set; returns how many blocks were new.
  size_t Merge(const Coverage& other);

  /// Number of blocks in `this` that are absent from `other`.
  size_t CountNotIn(const Coverage& other) const;

  /// True when every block of `other` is also covered here (the corpus
  /// distiller's invariant: distilled coverage must cover the merged
  /// corpus coverage exactly).
  bool CoversAll(const Coverage& other) const {
    return other.CountNotIn(*this) == 0;
  }

  /// Materializes the covered ids as a set (reports and tests; not for
  /// the hot path).
  std::unordered_set<uint64_t> blocks() const;

  /// Sorted covered ids (deterministic iteration for reports).
  std::vector<uint64_t> SortedBlocks() const;

  void Clear() {
    keys_.clear();
    pages_.clear();
    cached_key_ = kNoPage;
    count_ = 0;
  }

 private:
  /// 256-bit pages: big enough that MakeBlockId neighbours share a page,
  /// small enough that hash-scattered ids don't waste memory — and
  /// exactly one AVX2 register wide, so the SIMD arm is one load/op/store
  /// per page.
  static constexpr int kPageShift = 8;
  static constexpr uint64_t kPageMask = (1ULL << kPageShift) - 1;
  static constexpr size_t kWordsPerPage = (1ULL << kPageShift) / 64;
  /// Last-page-cache sentinel; real keys are block_id >> 8 < 2^56.
  static constexpr uint64_t kNoPage = ~0ULL;

  using Page = std::array<uint64_t, kWordsPerPage>;

  /// Resolves (inserting if absent) the page for `key` and refreshes the
  /// last-page cache. Out of line: Hit()'s fast path never reaches it.
  uint64_t* SlotFor(uint64_t key);

  // Physically key-sorted parallel arrays: keys_ ascending, pages_[i] is
  // the bitmap for keys_[i]. Inserts shift, so the merge-join paths get
  // pure contiguous walks with zero indirection — the hot-path trade.
  std::vector<uint64_t> keys_;
  std::vector<Page> pages_;
  uint64_t cached_key_ = kNoPage;
  uint32_t cached_pos_ = 0;
  size_t count_ = 0;
};

/// Builds a namespaced block id from a module hash and a local index.
uint64_t MakeBlockId(uint64_t module_hash, uint32_t local_index);

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_COVERAGE_H_
