/// \file
/// Basic-block coverage collection — the virtual kernel's equivalent of
/// KCOV. Every validation branch and deep path in the driver runtime has a
/// stable 64-bit block id; experiments compare sets of covered ids.

#ifndef KERNELGPT_VKERNEL_COVERAGE_H_
#define KERNELGPT_VKERNEL_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace kernelgpt::vkernel {

/// A set of covered basic-block ids.
class Coverage {
 public:
  /// Records one block hit. Returns true if the block was new.
  bool Hit(uint64_t block_id) { return blocks_.insert(block_id).second; }

  /// Number of distinct blocks covered.
  size_t Count() const { return blocks_.size(); }

  bool Contains(uint64_t block_id) const { return blocks_.count(block_id); }

  /// Merges `other` into this set; returns how many blocks were new.
  size_t Merge(const Coverage& other);

  /// Number of blocks in `this` that are absent from `other`.
  size_t CountNotIn(const Coverage& other) const;

  const std::unordered_set<uint64_t>& blocks() const { return blocks_; }

  void Clear() { blocks_.clear(); }

 private:
  std::unordered_set<uint64_t> blocks_;
};

/// Builds a namespaced block id from a module hash and a local index.
uint64_t MakeBlockId(uint64_t module_hash, uint32_t local_index);

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_COVERAGE_H_
