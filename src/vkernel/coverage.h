/// \file
/// Basic-block coverage collection — the virtual kernel's equivalent of
/// KCOV. Every validation branch and deep path in the driver runtime has a
/// stable 64-bit block id; experiments compare sets of covered ids.
///
/// Storage is a two-level dense structure: block ids are split into a page
/// key (high bits) and a bit index (low bits), and each page is a small
/// bitmap. Ids built with MakeBlockId share their module hash in the page
/// key, so one module's blocks cluster into densely packed pages and
/// Merge/CountNotIn run in O(pages * words) word operations instead of
/// per-id hashing. Arbitrary ids (e.g. raw hashes) still work — they just
/// land one-per-page, which degrades to the old per-id cost, not worse.

#ifndef KERNELGPT_VKERNEL_COVERAGE_H_
#define KERNELGPT_VKERNEL_COVERAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kernelgpt::vkernel {

/// A set of covered basic-block ids.
class Coverage {
 public:
  /// Records one block hit. Returns true if the block was new.
  bool Hit(uint64_t block_id) {
    Page& page = pages_[block_id >> kPageShift];
    uint64_t& word = page[(block_id & kPageMask) >> 6];
    const uint64_t bit = 1ULL << (block_id & 63);
    if (word & bit) return false;
    word |= bit;
    ++count_;
    return true;
  }

  /// Number of distinct blocks covered.
  size_t Count() const { return count_; }

  bool Contains(uint64_t block_id) const;

  /// Merges `other` into this set; returns how many blocks were new.
  size_t Merge(const Coverage& other);

  /// Number of blocks in `this` that are absent from `other`.
  size_t CountNotIn(const Coverage& other) const;

  /// True when every block of `other` is also covered here (the corpus
  /// distiller's invariant: distilled coverage must cover the merged
  /// corpus coverage exactly).
  bool CoversAll(const Coverage& other) const {
    return other.CountNotIn(*this) == 0;
  }

  /// Materializes the covered ids as a set (reports and tests; not for
  /// the hot path).
  std::unordered_set<uint64_t> blocks() const;

  /// Sorted covered ids (deterministic iteration for reports).
  std::vector<uint64_t> SortedBlocks() const;

  void Clear() {
    pages_.clear();
    count_ = 0;
  }

 private:
  /// 256-bit pages: big enough that MakeBlockId neighbours share a page,
  /// small enough that hash-scattered ids don't waste memory.
  static constexpr int kPageShift = 8;
  static constexpr uint64_t kPageMask = (1ULL << kPageShift) - 1;
  static constexpr size_t kWordsPerPage = (1ULL << kPageShift) / 64;

  using Page = std::array<uint64_t, kWordsPerPage>;

  std::unordered_map<uint64_t, Page> pages_;
  size_t count_ = 0;
};

/// Builds a namespaced block id from a module hash and a local index.
uint64_t MakeBlockId(uint64_t module_hash, uint32_t local_index);

}  // namespace kernelgpt::vkernel

#endif  // KERNELGPT_VKERNEL_COVERAGE_H_
