#include "vkernel/coverage.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define KERNELGPT_COVERAGE_HAVE_AVX2 1
#endif

namespace kernelgpt::vkernel {

namespace {

constexpr size_t kWords = 4;  // 256-bit pages, pinned by Coverage.

int
PopCount(uint64_t word)
{
  return __builtin_popcountll(word);
}

size_t
PopCountPage(const uint64_t* a)
{
  return static_cast<size_t>(PopCount(a[0]) + PopCount(a[1]) +
                             PopCount(a[2]) + PopCount(a[3]));
}

// -- Join loops --------------------------------------------------------------
// The set operations are whole loops specialized per dispatch arm, not
// per-page function pointers: GCC will not inline a target("avx2") callee
// into a plain caller, and an indirect call per 256-bit page costs more
// than the page op itself. Each arm gets the complete merge-join so the
// vector ops inline into the loop body. The scalar loops are the
// reference implementation; hotpath_test pins the arms bit-identical.
//
// Pages are addressed as raw word arrays (page p = words + 4*p) over the
// physically key-sorted storage, so the steady-state walk is two linear
// streams. `missing` collects source positions absent from the
// destination; the caller batch-inserts them afterwards.

/// Paired fast path: both sets hold exactly the same keys, so page i
/// lines up with page i. This is the steady state of a fuzzing campaign
/// (the global set has long since absorbed every page the per-round
/// delta touches).
size_t
PairedMergeScalar(uint64_t* dst, const uint64_t* src, size_t pages)
{
  size_t added = 0;
  for (size_t p = 0; p < pages; ++p) {
    uint64_t* d = dst + kWords * p;
    const uint64_t* s = src + kWords * p;
    const uint64_t f0 = s[0] & ~d[0];
    const uint64_t f1 = s[1] & ~d[1];
    const uint64_t f2 = s[2] & ~d[2];
    const uint64_t f3 = s[3] & ~d[3];
    if ((f0 | f1 | f2 | f3) == 0) continue;  // Nothing fresh.
    d[0] |= f0;
    d[1] |= f1;
    d[2] |= f2;
    d[3] |= f3;
    added += static_cast<size_t>(PopCount(f0) + PopCount(f1) + PopCount(f2) +
                                 PopCount(f3));
  }
  return added;
}

/// General merge-join: dst |= src over two sorted key arrays. Source
/// pages with no destination page go to `missing` (source positions,
/// ascending) for the caller to batch-insert.
size_t
JoinMergeScalar(const uint64_t* dkeys, size_t dn, uint64_t* dwords,
                const uint64_t* skeys, size_t sn, const uint64_t* swords,
                std::vector<uint32_t>& missing)
{
  size_t added = 0;
  size_t i = 0;
  for (size_t j = 0; j < sn; ++j) {
    const uint64_t key = skeys[j];
    while (i < dn && dkeys[i] < key) ++i;
    if (i < dn && dkeys[i] == key) {
      uint64_t* d = dwords + kWords * i;
      const uint64_t* s = swords + kWords * j;
      const uint64_t f0 = s[0] & ~d[0];
      const uint64_t f1 = s[1] & ~d[1];
      const uint64_t f2 = s[2] & ~d[2];
      const uint64_t f3 = s[3] & ~d[3];
      if ((f0 | f1 | f2 | f3) == 0) continue;
      d[0] |= f0;
      d[1] |= f1;
      d[2] |= f2;
      d[3] |= f3;
      added += static_cast<size_t>(PopCount(f0) + PopCount(f1) +
                                   PopCount(f2) + PopCount(f3));
    } else {
      missing.push_back(static_cast<uint32_t>(j));
    }
  }
  return added;
}

/// Paired count of a & ~b (same key set both sides).
size_t
PairedCountScalar(const uint64_t* a, const uint64_t* b, size_t pages)
{
  size_t n = 0;
  for (size_t p = 0; p < pages; ++p) {
    const uint64_t* pa = a + kWords * p;
    const uint64_t* pb = b + kWords * p;
    n += static_cast<size_t>(
        PopCount(pa[0] & ~pb[0]) + PopCount(pa[1] & ~pb[1]) +
        PopCount(pa[2] & ~pb[2]) + PopCount(pa[3] & ~pb[3]));
  }
  return n;
}

/// General count-join: how many bits of `a` are absent from `b`.
size_t
JoinCountScalar(const uint64_t* akeys, size_t an, const uint64_t* awords,
                const uint64_t* bkeys, size_t bn, const uint64_t* bwords)
{
  size_t n = 0;
  size_t j = 0;
  for (size_t i = 0; i < an; ++i) {
    const uint64_t key = akeys[i];
    while (j < bn && bkeys[j] < key) ++j;
    const uint64_t* pa = awords + kWords * i;
    if (j < bn && bkeys[j] == key) {
      const uint64_t* pb = bwords + kWords * j;
      n += static_cast<size_t>(
          PopCount(pa[0] & ~pb[0]) + PopCount(pa[1] & ~pb[1]) +
          PopCount(pa[2] & ~pb[2]) + PopCount(pa[3] & ~pb[3]));
    } else {
      n += PopCountPage(pa);
    }
  }
  return n;
}

#ifdef KERNELGPT_COVERAGE_HAVE_AVX2

// The AVX2 arm: one 256-bit register per page. The loops carry the
// target attribute so this file builds without -mavx2 globally; they are
// only ever called behind the __builtin_cpu_supports("avx2") dispatch
// check. Bit-population counts still extract to four u64 popcounts —
// AVX2 has no vector popcount, and the extract only runs on the rare
// fresh-bits path.

__attribute__((target("avx2"))) size_t
PairedMergeAvx2(uint64_t* dst, const uint64_t* src, size_t pages)
{
  size_t added = 0;
  for (size_t p = 0; p < pages; ++p) {
    uint64_t* dp = dst + kWords * p;
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dp));
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + kWords * p));
    const __m256i fresh = _mm256_andnot_si256(d, s);
    if (_mm256_testz_si256(fresh, fresh)) continue;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp),
                        _mm256_or_si256(d, s));
    alignas(32) uint64_t f[kWords];
    _mm256_store_si256(reinterpret_cast<__m256i*>(f), fresh);
    added += static_cast<size_t>(PopCount(f[0]) + PopCount(f[1]) +
                                 PopCount(f[2]) + PopCount(f[3]));
  }
  return added;
}

__attribute__((target("avx2"))) size_t
JoinMergeAvx2(const uint64_t* dkeys, size_t dn, uint64_t* dwords,
              const uint64_t* skeys, size_t sn, const uint64_t* swords,
              std::vector<uint32_t>& missing)
{
  size_t added = 0;
  size_t i = 0;
  for (size_t j = 0; j < sn; ++j) {
    const uint64_t key = skeys[j];
    while (i < dn && dkeys[i] < key) ++i;
    if (i < dn && dkeys[i] == key) {
      uint64_t* dp = dwords + kWords * i;
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dp));
      const __m256i s = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(swords + kWords * j));
      const __m256i fresh = _mm256_andnot_si256(d, s);
      if (_mm256_testz_si256(fresh, fresh)) continue;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp),
                          _mm256_or_si256(d, s));
      alignas(32) uint64_t f[kWords];
      _mm256_store_si256(reinterpret_cast<__m256i*>(f), fresh);
      added += static_cast<size_t>(PopCount(f[0]) + PopCount(f[1]) +
                                   PopCount(f[2]) + PopCount(f[3]));
    } else {
      missing.push_back(static_cast<uint32_t>(j));
    }
  }
  return added;
}

__attribute__((target("avx2"))) size_t
PairedCountAvx2(const uint64_t* a, const uint64_t* b, size_t pages)
{
  size_t n = 0;
  for (size_t p = 0; p < pages; ++p) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + kWords * p));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + kWords * p));
    const __m256i diff = _mm256_andnot_si256(vb, va);
    if (_mm256_testz_si256(diff, diff)) continue;
    alignas(32) uint64_t f[kWords];
    _mm256_store_si256(reinterpret_cast<__m256i*>(f), diff);
    n += static_cast<size_t>(PopCount(f[0]) + PopCount(f[1]) +
                             PopCount(f[2]) + PopCount(f[3]));
  }
  return n;
}

__attribute__((target("avx2"))) size_t
JoinCountAvx2(const uint64_t* akeys, size_t an, const uint64_t* awords,
              const uint64_t* bkeys, size_t bn, const uint64_t* bwords)
{
  size_t n = 0;
  size_t j = 0;
  for (size_t i = 0; i < an; ++i) {
    const uint64_t key = akeys[i];
    while (j < bn && bkeys[j] < key) ++j;
    const uint64_t* pa = awords + kWords * i;
    if (j < bn && bkeys[j] == key) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
      const __m256i vb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bwords + kWords * j));
      const __m256i diff = _mm256_andnot_si256(vb, va);
      if (_mm256_testz_si256(diff, diff)) continue;
      alignas(32) uint64_t f[kWords];
      _mm256_store_si256(reinterpret_cast<__m256i*>(f), diff);
      n += static_cast<size_t>(PopCount(f[0]) + PopCount(f[1]) +
                               PopCount(f[2]) + PopCount(f[3]));
    } else {
      n += PopCountPage(pa);
    }
  }
  return n;
}

#endif  // KERNELGPT_COVERAGE_HAVE_AVX2

/// The active dispatch arm. -1 = unresolved; resolved once on first use
/// (honouring KERNELGPT_COVERAGE_ARM) or pinned by SetCoverageArm.
/// Relaxed atomics: the value is written only at startup or by test arm
/// flips, which the SetCoverageArm contract keeps outside concurrent
/// merges.
std::atomic<int> g_arm{-1};

CoverageArm
ClampArm(CoverageArm arm)
{
  if (arm == CoverageArm::kSimd && !CoverageSimdAvailable()) {
    return CoverageArm::kScalar;
  }
  return arm;
}

CoverageArm
DefaultArm()
{
  // KERNELGPT_COVERAGE_ARM pins an arm process-wide (CI runs both);
  // anything else (or unset) auto-selects SIMD when the CPU has it.
  const char* env = std::getenv("KERNELGPT_COVERAGE_ARM");
  if (env && std::strcmp(env, "scalar") == 0) return CoverageArm::kScalar;
  return ClampArm(CoverageArm::kSimd);
}

bool
UseSimd()
{
  int a = g_arm.load(std::memory_order_relaxed);
  if (a < 0) {
    a = static_cast<int>(DefaultArm());
    g_arm.store(a, std::memory_order_relaxed);
  }
  return a == static_cast<int>(CoverageArm::kSimd);
}

}  // namespace

bool
CoverageSimdAvailable()
{
#ifdef KERNELGPT_COVERAGE_HAVE_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

CoverageArm
SetCoverageArm(CoverageArm arm)
{
  const CoverageArm got = ClampArm(arm);
  g_arm.store(static_cast<int>(got), std::memory_order_relaxed);
  return got;
}

CoverageArm
ResetCoverageArm()
{
  const CoverageArm got = DefaultArm();
  g_arm.store(static_cast<int>(got), std::memory_order_relaxed);
  return got;
}

CoverageArm
ActiveCoverageArm()
{
  return UseSimd() ? CoverageArm::kSimd : CoverageArm::kScalar;
}

uint64_t*
Coverage::SlotFor(uint64_t key)
{
  static_assert(kWordsPerPage == kWords,
                "join loops are hand-unrolled for 256-bit pages");
  static_assert(sizeof(Page) == kWords * sizeof(uint64_t),
                "pages must pack into a flat word array");
  auto at = std::lower_bound(keys_.begin(), keys_.end(), key);
  auto pos = static_cast<size_t>(at - keys_.begin());
  if (at == keys_.end() || *at != key) {
    keys_.insert(at, key);
    pages_.insert(pages_.begin() + static_cast<ptrdiff_t>(pos), Page{});
  }
  cached_key_ = key;
  cached_pos_ = static_cast<uint32_t>(pos);
  return pages_[pos].data();
}

bool
Coverage::Contains(uint64_t block_id) const
{
  const uint64_t key = block_id >> kPageShift;
  const Page* page = nullptr;
  if (key == cached_key_) {
    page = &pages_[cached_pos_];
  } else {
    auto at = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (at == keys_.end() || *at != key) return false;
    page = &pages_[static_cast<size_t>(at - keys_.begin())];
  }
  const uint64_t word = (*page)[(block_id & kPageMask) >> 6];
  return (word & (1ULL << (block_id & 63))) != 0;
}

size_t
Coverage::Merge(const Coverage& other)
{
  if (this == &other || other.keys_.empty()) return 0;
  const bool simd = UseSimd();
  uint64_t* dw = reinterpret_cast<uint64_t*>(pages_.data());
  const uint64_t* sw =
      reinterpret_cast<const uint64_t*>(other.pages_.data());
  size_t added = 0;
  if (keys_.size() == other.keys_.size() &&
      std::memcmp(keys_.data(), other.keys_.data(),
                  keys_.size() * sizeof(uint64_t)) == 0) {
    // Steady state: same page set on both sides, pure paired sweep.
#ifdef KERNELGPT_COVERAGE_HAVE_AVX2
    added = simd ? PairedMergeAvx2(dw, sw, keys_.size())
                 : PairedMergeScalar(dw, sw, keys_.size());
#else
    added = PairedMergeScalar(dw, sw, keys_.size());
#endif
  } else {
    std::vector<uint32_t> missing;
#ifdef KERNELGPT_COVERAGE_HAVE_AVX2
    added = simd ? JoinMergeAvx2(keys_.data(), keys_.size(), dw,
                                 other.keys_.data(), other.keys_.size(), sw,
                                 missing)
                 : JoinMergeScalar(keys_.data(), keys_.size(), dw,
                                   other.keys_.data(), other.keys_.size(),
                                   sw, missing);
#else
    added = JoinMergeScalar(keys_.data(), keys_.size(), dw,
                            other.keys_.data(), other.keys_.size(), sw,
                            missing);
#endif
    if (!missing.empty()) {
      // Batch-insert the pages we lacked: one interleave rebuild instead
      // of O(missing) shifting inserts. Positions move, so the
      // last-page cache is dropped.
      std::vector<uint64_t> nkeys;
      std::vector<Page> npages;
      nkeys.reserve(keys_.size() + missing.size());
      npages.reserve(keys_.size() + missing.size());
      size_t i = 0;
      for (const uint32_t j : missing) {
        const uint64_t key = other.keys_[j];
        while (i < keys_.size() && keys_[i] < key) {
          nkeys.push_back(keys_[i]);
          npages.push_back(pages_[i]);
          ++i;
        }
        nkeys.push_back(key);
        npages.push_back(other.pages_[j]);
        added += PopCountPage(other.pages_[j].data());
      }
      for (; i < keys_.size(); ++i) {
        nkeys.push_back(keys_[i]);
        npages.push_back(pages_[i]);
      }
      keys_ = std::move(nkeys);
      pages_ = std::move(npages);
      cached_key_ = kNoPage;
      cached_pos_ = 0;
    }
  }
  count_ += added;
  return added;
}

size_t
Coverage::CountNotIn(const Coverage& other) const
{
  if (this == &other || keys_.empty()) return 0;
  const bool simd = UseSimd();
  const uint64_t* aw = reinterpret_cast<const uint64_t*>(pages_.data());
  const uint64_t* bw =
      reinterpret_cast<const uint64_t*>(other.pages_.data());
  if (keys_.size() == other.keys_.size() &&
      std::memcmp(keys_.data(), other.keys_.data(),
                  keys_.size() * sizeof(uint64_t)) == 0) {
#ifdef KERNELGPT_COVERAGE_HAVE_AVX2
    return simd ? PairedCountAvx2(aw, bw, keys_.size())
                : PairedCountScalar(aw, bw, keys_.size());
#else
    return PairedCountScalar(aw, bw, keys_.size());
#endif
  }
#ifdef KERNELGPT_COVERAGE_HAVE_AVX2
  return simd ? JoinCountAvx2(keys_.data(), keys_.size(), aw,
                              other.keys_.data(), other.keys_.size(), bw)
              : JoinCountScalar(keys_.data(), keys_.size(), aw,
                                other.keys_.data(), other.keys_.size(), bw);
#else
  return JoinCountScalar(keys_.data(), keys_.size(), aw,
                         other.keys_.data(), other.keys_.size(), bw);
#endif
}

std::unordered_set<uint64_t>
Coverage::blocks() const
{
  std::unordered_set<uint64_t> out;
  out.reserve(count_);
  for (size_t p = 0; p < keys_.size(); ++p) {
    const uint64_t key = keys_[p];
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      uint64_t word = pages_[p][w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        out.insert((key << kPageShift) | (w << 6) | static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }
  return out;
}

std::vector<uint64_t>
Coverage::SortedBlocks() const
{
  // Pages in key order and bits in word order already yield ascending
  // ids — no final sort.
  std::vector<uint64_t> out;
  out.reserve(count_);
  for (size_t p = 0; p < keys_.size(); ++p) {
    const uint64_t key = keys_[p];
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      uint64_t word = pages_[p][w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        out.push_back((key << kPageShift) | (w << 6) |
                      static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }
  return out;
}

uint64_t
MakeBlockId(uint64_t module_hash, uint32_t local_index)
{
  return (module_hash << 20) ^ static_cast<uint64_t>(local_index);
}

}  // namespace kernelgpt::vkernel
