#include "vkernel/coverage.h"

namespace kernelgpt::vkernel {

size_t
Coverage::Merge(const Coverage& other)
{
  size_t added = 0;
  for (uint64_t b : other.blocks_) {
    if (blocks_.insert(b).second) ++added;
  }
  return added;
}

size_t
Coverage::CountNotIn(const Coverage& other) const
{
  size_t n = 0;
  for (uint64_t b : blocks_) {
    if (!other.blocks_.count(b)) ++n;
  }
  return n;
}

uint64_t
MakeBlockId(uint64_t module_hash, uint32_t local_index)
{
  return (module_hash << 20) ^ static_cast<uint64_t>(local_index);
}

}  // namespace kernelgpt::vkernel
