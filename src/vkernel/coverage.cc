#include "vkernel/coverage.h"

#include <algorithm>

namespace kernelgpt::vkernel {

namespace {

int
PopCount(uint64_t word)
{
  return __builtin_popcountll(word);
}

}  // namespace

bool
Coverage::Contains(uint64_t block_id) const
{
  auto it = pages_.find(block_id >> kPageShift);
  if (it == pages_.end()) return false;
  const uint64_t word = it->second[(block_id & kPageMask) >> 6];
  return (word & (1ULL << (block_id & 63))) != 0;
}

size_t
Coverage::Merge(const Coverage& other)
{
  size_t added = 0;
  for (const auto& [key, theirs] : other.pages_) {
    Page& ours = pages_[key];
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      const uint64_t fresh = theirs[w] & ~ours[w];
      if (fresh) {
        ours[w] |= fresh;
        added += static_cast<size_t>(PopCount(fresh));
      }
    }
  }
  count_ += added;
  return added;
}

size_t
Coverage::CountNotIn(const Coverage& other) const
{
  size_t n = 0;
  for (const auto& [key, ours] : pages_) {
    auto it = other.pages_.find(key);
    if (it == other.pages_.end()) {
      for (uint64_t word : ours) n += static_cast<size_t>(PopCount(word));
      continue;
    }
    const Page& theirs = it->second;
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      n += static_cast<size_t>(PopCount(ours[w] & ~theirs[w]));
    }
  }
  return n;
}

std::unordered_set<uint64_t>
Coverage::blocks() const
{
  std::unordered_set<uint64_t> out;
  out.reserve(count_);
  for (const auto& [key, page] : pages_) {
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      uint64_t word = page[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        out.insert((key << kPageShift) | (w << 6) | static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }
  return out;
}

std::vector<uint64_t>
Coverage::SortedBlocks() const
{
  std::vector<uint64_t> out;
  out.reserve(count_);
  for (const auto& [key, page] : pages_) {
    for (size_t w = 0; w < kWordsPerPage; ++w) {
      uint64_t word = page[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        out.push_back((key << kPageShift) | (w << 6) |
                      static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t
MakeBlockId(uint64_t module_hash, uint32_t local_index)
{
  return (module_hash << 20) ^ static_cast<uint64_t>(local_index);
}

}  // namespace kernelgpt::vkernel
