#include "vkernel/kernel.h"

namespace kernelgpt::vkernel {

uint64_t
Buffer::ReadScalar(size_t offset, size_t size) const
{
  uint64_t value = 0;
  for (size_t i = 0; i < size && i < 8; ++i) {
    size_t idx = offset + i;
    if (idx >= bytes.size()) break;
    value |= static_cast<uint64_t>(bytes[idx]) << (8 * i);
  }
  return value;
}

void
Buffer::WriteScalar(size_t offset, size_t size, uint64_t value)
{
  if (offset + size > bytes.size()) bytes.resize(offset + size, 0);
  for (size_t i = 0; i < size && i < 8; ++i) {
    bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void
Kernel::RegisterDevice(std::unique_ptr<DeviceDriver> driver)
{
  devices_.push_back(std::move(driver));
}

void
Kernel::RegisterSocketFamily(std::unique_ptr<SocketFamily> family)
{
  families_.push_back(std::move(family));
}

DeviceDriver*
Kernel::FindDeviceByPath(const std::string& path) const
{
  for (const auto& d : devices_) {
    if (d->NodePath() == path) return d.get();
  }
  return nullptr;
}

SocketFamily*
Kernel::FindFamilyByDomain(uint64_t domain) const
{
  for (const auto& f : families_) {
    if (f->Domain() == domain) return f.get();
  }
  return nullptr;
}

void
Kernel::BeginProgram()
{
  fd_table_.clear();
  next_fd_ = 3;
  for (auto& d : devices_) d->ResetState();
  for (auto& f : families_) f->ResetState();
}

void
Kernel::EndProgram(ExecContext& ctx)
{
  for (auto& [fd, entry] : fd_table_) {
    entry.handler->Release(ctx, *this);
  }
  fd_table_.clear();
}

long
Kernel::InstallFile(std::shared_ptr<FileHandler> handler)
{
  long fd = next_fd_++;
  fd_table_[fd] = {std::move(handler), /*is_socket=*/false};
  return fd;
}

FileHandler*
Kernel::LookupFd(long fd) const
{
  auto it = fd_table_.find(fd);
  return it == fd_table_.end() ? nullptr : it->second.handler.get();
}

SocketHandler*
Kernel::LookupSocket(long fd) const
{
  auto it = fd_table_.find(fd);
  if (it == fd_table_.end() || !it->second.is_socket) return nullptr;
  return static_cast<SocketHandler*>(it->second.handler.get());
}

long
Kernel::Openat(const std::string& path, uint64_t flags, ExecContext& ctx)
{
  (void)flags;
  DeviceDriver* driver = FindDeviceByPath(path);
  if (!driver) return -kENOENT;
  long err = 0;
  std::unique_ptr<FileHandler> handler = driver->Open(ctx, *this, &err);
  if (!handler) return err != 0 ? err : -kENODEV;
  return InstallFile(std::shared_ptr<FileHandler>(std::move(handler)));
}

long
Kernel::Close(long fd, ExecContext& ctx)
{
  auto it = fd_table_.find(fd);
  if (it == fd_table_.end()) return -kEBADF;
  // Release fires only when the last reference drops (dup-aware).
  std::shared_ptr<FileHandler> handler = it->second.handler;
  fd_table_.erase(it);
  bool still_open = false;
  for (const auto& [other_fd, entry] : fd_table_) {
    if (entry.handler == handler) still_open = true;
  }
  if (!still_open) handler->Release(ctx, *this);
  return 0;
}

long
Kernel::Dup(long fd, ExecContext& ctx)
{
  (void)ctx;
  auto it = fd_table_.find(fd);
  if (it == fd_table_.end()) return -kEBADF;
  long new_fd = next_fd_++;
  fd_table_[new_fd] = it->second;
  return new_fd;
}

long
Kernel::Ioctl(long fd, uint64_t cmd, Buffer* arg, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Ioctl(cmd, arg, ctx, *this);
}

long
Kernel::Read(long fd, Buffer* out, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Read(out, ctx);
}

long
Kernel::Write(long fd, const Buffer& in, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Write(in, ctx);
}

long
Kernel::Poll(long fd, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Poll(ctx);
}

long
Kernel::Mmap(long fd, uint64_t length, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Mmap(length, ctx);
}

long
Kernel::Socket(uint64_t domain, uint64_t type, uint64_t protocol,
               ExecContext& ctx)
{
  // Several protocol modules can share one address family (e.g. the
  // Bluetooth BTPROTO_* sockets under AF_BLUETOOTH); the first module
  // that accepts (type, protocol) wins, like the kernel's create loop.
  bool domain_seen = false;
  long err = 0;
  for (const auto& family : families_) {
    if (family->Domain() != domain) continue;
    domain_seen = true;
    std::unique_ptr<SocketHandler> handler =
        family->Create(type, protocol, ctx, *this, &err);
    if (handler) {
      long fd = next_fd_++;
      fd_table_[fd] = {std::shared_ptr<FileHandler>(std::move(handler)),
                       /*is_socket=*/true};
      return fd;
    }
  }
  if (!domain_seen) return -kEAFNOSUPPORT;
  return err != 0 ? err : -kEINVAL;
}

long
Kernel::SetSockOpt(long fd, uint64_t level, uint64_t optname,
                   const Buffer& val, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->SetSockOpt(level, optname, val, ctx, *this);
}

long
Kernel::GetSockOpt(long fd, uint64_t level, uint64_t optname, Buffer* val,
                   ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->GetSockOpt(level, optname, val, ctx, *this);
}

long
Kernel::Bind(long fd, const Buffer& addr, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Bind(addr, ctx, *this);
}

long
Kernel::Connect(long fd, const Buffer& addr, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Connect(addr, ctx, *this);
}

long
Kernel::SendTo(long fd, const Buffer& data, const Buffer& addr,
               ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->SendTo(data, addr, ctx, *this);
}

long
Kernel::RecvFrom(long fd, Buffer* data, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->RecvFrom(data, ctx, *this);
}

long
Kernel::Listen(long fd, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Listen(ctx, *this);
}

long
Kernel::Accept(long fd, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Accept(ctx, *this);
}

}  // namespace kernelgpt::vkernel
