#include "vkernel/kernel.h"

#include <algorithm>

namespace kernelgpt::vkernel {

uint64_t
Buffer::ReadScalar(size_t offset, size_t size) const
{
  const uint8_t* base = data();
  const size_t limit = this->size();
  uint64_t value = 0;
  for (size_t i = 0; i < size && i < 8; ++i) {
    size_t idx = offset + i;
    if (idx >= limit) break;
    value |= static_cast<uint64_t>(base[idx]) << (8 * i);
  }
  return value;
}

void
Buffer::WriteScalar(size_t offset, size_t size, uint64_t value)
{
  Materialize();
  if (offset + size > bytes.size()) bytes.resize(offset + size, 0);
  for (size_t i = 0; i < size && i < 8; ++i) {
    bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void
Kernel::RegisterDevice(std::unique_ptr<DeviceDriver> driver)
{
  device_by_path_.emplace(driver->NodePath(),
                          std::make_pair(driver.get(), devices_.size()));
  device_dirty_.push_back(0);
  devices_.push_back(std::move(driver));
}

void
Kernel::RegisterSocketFamily(std::unique_ptr<SocketFamily> family)
{
  family_dirty_.push_back(0);
  families_.push_back(std::move(family));
}

DeviceDriver*
Kernel::FindDeviceByPath(std::string_view path) const
{
  auto it = device_by_path_.find(path);
  return it == device_by_path_.end() ? nullptr : it->second.first;
}

SocketFamily*
Kernel::FindFamilyByDomain(uint64_t domain) const
{
  for (const auto& f : families_) {
    if (f->Domain() == domain) return f.get();
  }
  return nullptr;
}

void
Kernel::MarkDeviceDirty(size_t index)
{
  if (!device_dirty_[index]) {
    device_dirty_[index] = 1;
    dirty_devices_.push_back(index);
  }
}

void
Kernel::MarkFamilyDirty(size_t index)
{
  if (!family_dirty_[index]) {
    family_dirty_[index] = 1;
    dirty_families_.push_back(index);
  }
}

void
Kernel::ResetModules(bool dirty_only)
{
  if (dirty_only) {
    for (size_t i : dirty_devices_) {
      devices_[i]->ResetState();
      device_dirty_[i] = 0;
    }
    for (size_t i : dirty_families_) {
      families_[i]->ResetState();
      family_dirty_[i] = 0;
    }
  } else {
    for (auto& d : devices_) d->ResetState();
    for (auto& f : families_) f->ResetState();
    std::fill(device_dirty_.begin(), device_dirty_.end(), 0);
    std::fill(family_dirty_.begin(), family_dirty_.end(), 0);
  }
  dirty_devices_.clear();
  dirty_families_.clear();
}

void
Kernel::BeginProgram()
{
  files_.clear();
  ResetModules(/*dirty_only=*/in_batch_);
}

void
Kernel::BeginBatch()
{
  in_batch_ = true;
}

void
Kernel::EndBatch()
{
  in_batch_ = false;
  ResetModules(/*dirty_only=*/false);
}

void
Kernel::RecycleIfPooled(std::shared_ptr<FileHandler> handler)
{
  // Only the pool may keep references once the kernel hands a handler
  // back; with dup()'d descriptors the last entry to drop does the
  // recycling (earlier drops see use_count > 1 and fall through to a
  // plain reference drop).
  if (!handler || handler.use_count() != 1) return;
  HandlerRecycler* recycler = handler->recycler();
  if (recycler) recycler->Recycle(std::move(handler));
}

void
Kernel::EndProgram(ExecContext& ctx)
{
  // Release in fd order (deterministic; the old hash table iterated in
  // unspecified order).
  for (auto& entry : files_) {
    if (entry.handler) entry.handler->Release(ctx, *this);
  }
  for (auto& entry : files_) {
    RecycleIfPooled(std::move(entry.handler));
  }
  files_.clear();
}

long
Kernel::InstallEntry(std::shared_ptr<FileHandler> handler, bool is_socket)
{
  files_.push_back({std::move(handler), is_socket});
  return kFdBase + static_cast<long>(files_.size()) - 1;
}

long
Kernel::InstallFile(std::shared_ptr<FileHandler> handler)
{
  return InstallEntry(std::move(handler), /*is_socket=*/false);
}

FileHandler*
Kernel::LookupFd(long fd) const
{
  const size_t idx = static_cast<size_t>(fd - kFdBase);
  if (fd < kFdBase || idx >= files_.size()) return nullptr;
  return files_[idx].handler.get();
}

SocketHandler*
Kernel::LookupSocket(long fd) const
{
  const size_t idx = static_cast<size_t>(fd - kFdBase);
  if (fd < kFdBase || idx >= files_.size() || !files_[idx].is_socket) {
    return nullptr;
  }
  return static_cast<SocketHandler*>(files_[idx].handler.get());
}

long
Kernel::Openat(std::string_view path, uint64_t flags, ExecContext& ctx)
{
  (void)flags;
  auto it = device_by_path_.find(path);
  if (it == device_by_path_.end()) return -kENOENT;
  DeviceDriver* driver = it->second.first;
  // Open may mutate module state even when it fails, so the module is
  // dirty from here on regardless of the outcome.
  MarkDeviceDirty(it->second.second);
  long err = 0;
  std::shared_ptr<FileHandler> handler = driver->Open(ctx, *this, &err);
  if (!handler) return err != 0 ? err : -kENODEV;
  return InstallFile(std::move(handler));
}

long
Kernel::Close(long fd, ExecContext& ctx)
{
  const size_t idx = static_cast<size_t>(fd - kFdBase);
  if (fd < kFdBase || idx >= files_.size() || !files_[idx].handler) {
    return -kEBADF;
  }
  // Release fires only when the last reference drops (dup-aware).
  std::shared_ptr<FileHandler> handler = std::move(files_[idx].handler);
  bool still_open = false;
  for (const auto& entry : files_) {
    if (entry.handler == handler) still_open = true;
  }
  if (!still_open) {
    handler->Release(ctx, *this);
    RecycleIfPooled(std::move(handler));
  }
  return 0;
}

long
Kernel::Dup(long fd, ExecContext& ctx)
{
  (void)ctx;
  const size_t idx = static_cast<size_t>(fd - kFdBase);
  if (fd < kFdBase || idx >= files_.size() || !files_[idx].handler) {
    return -kEBADF;
  }
  return InstallEntry(files_[idx].handler, files_[idx].is_socket);
}

long
Kernel::Ioctl(long fd, uint64_t cmd, Buffer* arg, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Ioctl(cmd, arg, ctx, *this);
}

long
Kernel::Read(long fd, Buffer* out, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Read(out, ctx);
}

long
Kernel::Write(long fd, const Buffer& in, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Write(in, ctx);
}

long
Kernel::Poll(long fd, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Poll(ctx);
}

long
Kernel::Mmap(long fd, uint64_t length, ExecContext& ctx)
{
  FileHandler* handler = LookupFd(fd);
  if (!handler) return -kEBADF;
  return handler->Mmap(length, ctx);
}

long
Kernel::Socket(uint64_t domain, uint64_t type, uint64_t protocol,
               ExecContext& ctx)
{
  // Several protocol modules can share one address family (e.g. the
  // Bluetooth BTPROTO_* sockets under AF_BLUETOOTH); the first module
  // that accepts (type, protocol) wins, like the kernel's create loop.
  bool domain_seen = false;
  long err = 0;
  for (size_t i = 0; i < families_.size(); ++i) {
    const auto& family = families_[i];
    if (family->Domain() != domain) continue;
    domain_seen = true;
    MarkFamilyDirty(i);
    std::shared_ptr<SocketHandler> handler =
        family->Create(type, protocol, ctx, *this, &err);
    if (handler) {
      return InstallEntry(std::move(handler), /*is_socket=*/true);
    }
  }
  if (!domain_seen) return -kEAFNOSUPPORT;
  return err != 0 ? err : -kEINVAL;
}

long
Kernel::SetSockOpt(long fd, uint64_t level, uint64_t optname,
                   const Buffer& val, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->SetSockOpt(level, optname, val, ctx, *this);
}

long
Kernel::GetSockOpt(long fd, uint64_t level, uint64_t optname, Buffer* val,
                   ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->GetSockOpt(level, optname, val, ctx, *this);
}

long
Kernel::Bind(long fd, const Buffer& addr, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Bind(addr, ctx, *this);
}

long
Kernel::Connect(long fd, const Buffer& addr, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Connect(addr, ctx, *this);
}

long
Kernel::SendTo(long fd, const Buffer& data, const Buffer& addr,
               ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->SendTo(data, addr, ctx, *this);
}

long
Kernel::RecvFrom(long fd, Buffer* data, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->RecvFrom(data, ctx, *this);
}

long
Kernel::Listen(long fd, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Listen(ctx, *this);
}

long
Kernel::Accept(long fd, ExecContext& ctx)
{
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return -kEBADF;
  return sock->Accept(ctx, *this);
}

}  // namespace kernelgpt::vkernel
