#include "vkernel/kernel.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault.h"

namespace kernelgpt::vkernel {

uint64_t
Buffer::ReadScalar(size_t offset, size_t size) const
{
  const uint8_t* base = data();
  const size_t limit = this->size();
  uint64_t value = 0;
  for (size_t i = 0; i < size && i < 8; ++i) {
    size_t idx = offset + i;
    if (idx >= limit) break;
    value |= static_cast<uint64_t>(base[idx]) << (8 * i);
  }
  return value;
}

void
Buffer::WriteScalar(size_t offset, size_t size, uint64_t value)
{
  Materialize();
  if (offset + size > bytes.size()) bytes.resize(offset + size, 0);
  for (size_t i = 0; i < size && i < 8; ++i) {
    bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void
Kernel::RegisterDevice(std::unique_ptr<DeviceDriver> driver)
{
  device_by_path_.emplace(driver->NodePath(),
                          std::make_pair(driver.get(), devices_.size()));
  device_dirty_.push_back(0);
  devices_.push_back(std::move(driver));
}

void
Kernel::RegisterSocketFamily(std::unique_ptr<SocketFamily> family)
{
  family_dirty_.push_back(0);
  families_.push_back(std::move(family));
}

DeviceDriver*
Kernel::FindDeviceByPath(std::string_view path) const
{
  auto it = device_by_path_.find(path);
  return it == device_by_path_.end() ? nullptr : it->second.first;
}

SocketFamily*
Kernel::FindFamilyByDomain(uint64_t domain) const
{
  for (const auto& f : families_) {
    if (f->Domain() == domain) return f.get();
  }
  return nullptr;
}

void
Kernel::MarkDeviceDirty(size_t index)
{
  if (!device_dirty_[index]) {
    device_dirty_[index] = 1;
    dirty_devices_.push_back(index);
  }
}

void
Kernel::MarkFamilyDirty(size_t index)
{
  if (!family_dirty_[index]) {
    family_dirty_[index] = 1;
    dirty_families_.push_back(index);
  }
}

void
Kernel::ResetModules(bool dirty_only)
{
  if (dirty_only) {
    for (size_t i : dirty_devices_) {
      devices_[i]->ResetState();
      device_dirty_[i] = 0;
    }
    for (size_t i : dirty_families_) {
      families_[i]->ResetState();
      family_dirty_[i] = 0;
    }
  } else {
    for (auto& d : devices_) d->ResetState();
    for (auto& f : families_) f->ResetState();
    std::fill(device_dirty_.begin(), device_dirty_.end(), 0);
    std::fill(family_dirty_.begin(), family_dirty_.end(), 0);
  }
  dirty_devices_.clear();
  dirty_families_.clear();
}

void
Kernel::BeginProgram()
{
  fds_.Clear();
  ResetModules(/*dirty_only=*/in_batch_);
}

void
Kernel::BeginBatch()
{
  KERNELGPT_FAULT_POINT("vkernel.begin_batch", policy_.name);
  // Documented precondition, now enforced: a batch window may only open
  // on a pristine kernel. A nested window or a window opened mid-program
  // (live descriptors) would let dirty-entry state — and pooled handlers
  // the recycler never saw back — leak across program boundaries.
  if (in_batch_) {
    throw std::logic_error(
        "Kernel::BeginBatch: batch window already open (missing EndBatch)");
  }
  if (!fds_.empty()) {
    throw std::logic_error(
        "Kernel::BeginBatch: fd table not pristine (batch opened "
        "mid-program; descriptors from the running program would leak)");
  }
  in_batch_ = true;
}

void
Kernel::EndBatch()
{
  in_batch_ = false;
  ResetModules(/*dirty_only=*/false);
}

void
Kernel::RecycleIfPooled(std::shared_ptr<FileHandler> handler)
{
  // Only the pool may keep references once the kernel hands a handler
  // back; with dup()'d descriptors the last entry to drop does the
  // recycling (earlier drops see use_count > 1 and fall through to a
  // plain reference drop).
  if (!handler || handler.use_count() != 1) return;
  HandlerRecycler* recycler = handler->recycler();
  if (recycler) recycler->Recycle(std::move(handler));
}

void
Kernel::EndProgram(ExecContext& ctx)
{
  set_context(&ctx);
  // Release in fd order (deterministic; the old hash table iterated in
  // unspecified order).
  for (auto& entry : fds_.entries()) {
    if (entry.handler) entry.handler->Release(*this);
  }
  for (auto& entry : fds_.entries()) {
    RecycleIfPooled(std::move(entry.handler));
  }
  fds_.Clear();
}

long
Kernel::InstallEntry(std::shared_ptr<FileHandler> handler, bool is_socket)
{
  return fds_.Install(std::move(handler), is_socket);
}

long
Kernel::InstallFile(std::shared_ptr<FileHandler> handler)
{
  return InstallEntry(std::move(handler), /*is_socket=*/false);
}

long
Kernel::InstallSocket(std::shared_ptr<SocketHandler> handler)
{
  return InstallEntry(std::move(handler), /*is_socket=*/true);
}

std::string
Kernel::ModuleStateShape() const
{
  // Descriptors in slot (install) order: the slot sequence is the same
  // under every FdLayout, so unified and split fd spaces produce the
  // same shape for the same behavior. Stateless handlers (empty brief)
  // are skipped entirely — their presence is already captured by
  // FdTableShape.
  std::string shape;
  size_t slot = 0;
  for (const auto& entry : fds_.entries()) {
    const size_t this_slot = slot++;
    if (!entry.handler) continue;
    std::string brief = entry.handler->StateBrief();
    if (brief.empty()) continue;
    shape += 's';
    shape += std::to_string(this_slot);
    shape += '=';
    shape += brief;
    shape += ' ';
  }
  // Module-global state (port tables...) in registration order.
  for (const auto& family : families_) {
    std::string brief = family->StateBrief();
    if (brief.empty()) continue;
    shape += family->Name();
    shape += '{';
    shape += brief;
    shape += "} ";
  }
  if (!shape.empty()) shape.pop_back();
  return shape;
}

FileHandler*
Kernel::LookupFd(long fd) const
{
  const FdEntry* entry = fds_.Find(fd);
  return entry ? entry->handler.get() : nullptr;
}

SocketHandler*
Kernel::LookupSocket(long fd) const
{
  const FdEntry* entry = fds_.Find(fd);
  if (!entry || !entry->is_socket) return nullptr;
  return static_cast<SocketHandler*>(entry->handler.get());
}

SyscallResult
Kernel::Openat(std::string_view path, uint64_t flags, ExecContext& ctx)
{
  (void)flags;
  set_context(&ctx);
  auto it = device_by_path_.find(path);
  if (it == device_by_path_.end()) {
    return SyscallResult::Err(policy_.unknown_path_errno);
  }
  DeviceDriver* driver = it->second.first;
  // Open may mutate module state even when it fails, so the module is
  // dirty from here on regardless of the outcome.
  MarkDeviceDirty(it->second.second);
  long err = 0;
  std::shared_ptr<FileHandler> handler = driver->Open(*this, &err);
  if (!handler) return SyscallResult::FromRaw(err != 0 ? err : -kENODEV);
  return SyscallResult::Ok(InstallFile(std::move(handler)));
}

SyscallResult
Kernel::Close(long fd, ExecContext& ctx)
{
  set_context(&ctx);
  FdEntry* entry = fds_.Find(fd);
  if (!entry || !entry->handler) {
    if (policy_.close_invalid_fd_ok) return SyscallResult::Ok(0);
    return SyscallResult::Err(policy_.bad_fd_errno);
  }
  // Release fires only when the last reference drops (dup-aware).
  std::shared_ptr<FileHandler> handler = std::move(entry->handler);
  bool still_open = false;
  for (const auto& e : fds_.entries()) {
    if (e.handler == handler) still_open = true;
  }
  if (!still_open) {
    handler->Release(*this);
    RecycleIfPooled(std::move(handler));
  }
  return SyscallResult::Ok(0);
}

SyscallResult
Kernel::Dup(long fd, ExecContext& ctx)
{
  set_context(&ctx);
  FdEntry* entry = fds_.Find(fd);
  if (!entry || !entry->handler) {
    return SyscallResult::Err(policy_.bad_fd_errno);
  }
  return SyscallResult::Ok(InstallEntry(entry->handler, entry->is_socket));
}

SyscallResult
Kernel::Ioctl(long fd, uint64_t cmd, Buffer* arg, ExecContext& ctx)
{
  set_context(&ctx);
  FileHandler* handler = LookupFd(fd);
  if (!handler) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(handler->Ioctl(cmd, arg, *this));
}

SyscallResult
Kernel::Read(long fd, Buffer* out, ExecContext& ctx)
{
  set_context(&ctx);
  FileHandler* handler = LookupFd(fd);
  if (!handler) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(handler->Read(out, *this));
}

SyscallResult
Kernel::Write(long fd, const Buffer& in, ExecContext& ctx)
{
  set_context(&ctx);
  FileHandler* handler = LookupFd(fd);
  if (!handler) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(handler->Write(in, *this));
}

SyscallResult
Kernel::Poll(long fd, ExecContext& ctx)
{
  set_context(&ctx);
  FileHandler* handler = LookupFd(fd);
  if (!handler) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(handler->Poll(*this));
}

SyscallResult
Kernel::Mmap(long fd, uint64_t length, ExecContext& ctx)
{
  set_context(&ctx);
  FileHandler* handler = LookupFd(fd);
  if (!handler) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(handler->Mmap(length, *this));
}

SyscallResult
Kernel::Socket(uint64_t domain, uint64_t type, uint64_t protocol,
               ExecContext& ctx)
{
  set_context(&ctx);
  // Several protocol modules can share one address family (e.g. the
  // Bluetooth BTPROTO_* sockets under AF_BLUETOOTH); the first module
  // that accepts (type, protocol) wins, like the kernel's create loop.
  bool domain_seen = false;
  long err = 0;
  for (size_t i = 0; i < families_.size(); ++i) {
    const auto& family = families_[i];
    if (family->Domain() != domain) continue;
    domain_seen = true;
    MarkFamilyDirty(i);
    std::shared_ptr<SocketHandler> handler =
        family->Create(type, protocol, *this, &err);
    if (handler) {
      return SyscallResult::Ok(
          InstallEntry(std::move(handler), /*is_socket=*/true));
    }
  }
  if (!domain_seen) return SyscallResult::Err(policy_.unknown_domain_errno);
  return err != 0 ? SyscallResult::FromRaw(err) : SyscallResult::Err(kEINVAL);
}

SyscallResult
Kernel::SetSockOpt(long fd, uint64_t level, uint64_t optname,
                   const Buffer& val, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->SetSockOpt(level, optname, val, *this));
}

SyscallResult
Kernel::GetSockOpt(long fd, uint64_t level, uint64_t optname, Buffer* val,
                   ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->GetSockOpt(level, optname, val, *this));
}

SyscallResult
Kernel::Bind(long fd, const Buffer& addr, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->Bind(addr, *this));
}

SyscallResult
Kernel::Connect(long fd, const Buffer& addr, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->Connect(addr, *this));
}

SyscallResult
Kernel::SendTo(long fd, const Buffer& data, const Buffer& addr,
               ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->SendTo(data, addr, *this));
}

SyscallResult
Kernel::RecvFrom(long fd, Buffer* data, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->RecvFrom(data, *this));
}

SyscallResult
Kernel::Listen(long fd, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->Listen(*this));
}

SyscallResult
Kernel::Accept(long fd, ExecContext& ctx)
{
  set_context(&ctx);
  SocketHandler* sock = LookupSocket(fd);
  if (!sock) return SyscallResult::Err(policy_.bad_fd_errno);
  return SyscallResult::FromRaw(sock->Accept(*this));
}

std::unique_ptr<KernelModel>
MakeStrictModel()
{
  return std::make_unique<StrictModel>();
}

std::unique_ptr<KernelModel>
MakePermissiveModel()
{
  return std::make_unique<PermissiveModel>();
}

}  // namespace kernelgpt::vkernel
