/// \file
/// Rule-based static specification generator modeling SyzDescribe, the
/// paper's state-of-the-art baseline. Its rule set encodes exactly the
/// behavioural envelope the paper documents:
///
///   - device names come from miscdevice `.name` (it does not know the
///     `.nodename` override — the Fig. 2 failure) and from device_create
///     formats;
///   - switch dispatch is modeled, but command modifications like
///     `cmd = _IOC_NR(command)` are not: the raw case constant is used as
///     the command value (Fig. 2c's "Wrong CMD value");
///   - static dispatch *tables* are not modeled (no commands found);
///   - delegation is followed to a fixed depth only;
///   - struct fields are recovered structurally with machine names and no
///     semantics (no len[], flags[], or ranges — Fig. 5's contrast);
///   - every struct-carrying ioctl is additionally described a second
///     time with a generic byte-array payload (the duplicate-description
///     behaviour Table 5 footnotes);
///   - sockets are not supported at all.

#ifndef KERNELGPT_BASELINE_SYZ_DESCRIBE_H_
#define KERNELGPT_BASELINE_SYZ_DESCRIBE_H_

#include <string>

#include "extractor/handler_finder.h"
#include "ksrc/definition_index.h"
#include "syzlang/ast.h"

namespace kernelgpt::baseline {

/// Result of running the baseline on one driver handler.
struct SyzDescribeResult {
  std::string module;
  syzlang::SpecFile spec;
  /// False when the handler uses constructs outside the rule set (table
  /// dispatch, deep delegation) and no commands could be described.
  bool generated = false;
  size_t syscall_count = 0;
  size_t type_count = 0;
};

/// The rule-based generator.
class SyzDescribe {
 public:
  explicit SyzDescribe(const ksrc::DefinitionIndex* index);

  /// Generates a specification for one driver handler. Never analyzes
  /// sockets (the paper's N/A entries).
  SyzDescribeResult GenerateForDriver(const extractor::DriverHandler& handler);

  /// Maximum delegation depth the static rules trace through.
  static constexpr int kMaxDelegationDepth = 3;

 private:
  const ksrc::DefinitionIndex* index_;
};

}  // namespace kernelgpt::baseline

#endif  // KERNELGPT_BASELINE_SYZ_DESCRIBE_H_
