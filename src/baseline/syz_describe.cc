#include "baseline/syz_describe.h"

#include <deque>
#include <unordered_set>

#include "ksrc/body_analysis.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::baseline {

using syzlang::Dir;
using syzlang::Field;
using syzlang::ResourceDef;
using syzlang::SpecFile;
using syzlang::StructDef;
using syzlang::SyscallDef;
using syzlang::Type;

namespace {

/// Machine-generated id in SyzDescribe's style (Fig. 2c's "34545").
std::string
HashedId(const std::string& seed)
{
  return util::Format("%05llu",
                      static_cast<unsigned long long>(
                          util::StableHash(seed) % 90000 + 10000));
}

int
ScalarBitsOf(const std::string& type_text)
{
  std::string t(util::Trim(type_text));
  if (t == "__u8" || t == "u8" || t == "char" || t == "__s8") return 8;
  if (t == "__u16" || t == "u16" || t == "__s16" || t == "__le16") return 16;
  if (t == "__u64" || t == "u64" || t == "__s64" || t == "__le64" ||
      t == "long" || t == "unsigned long") {
    return 64;
  }
  return 32;
}

}  // namespace

SyzDescribe::SyzDescribe(const ksrc::DefinitionIndex* index) : index_(index) {}

SyzDescribeResult
SyzDescribe::GenerateForDriver(const extractor::DriverHandler& handler)
{
  SyzDescribeResult result;
  result.module = handler.file_path;

  // -- Rule 1: device name -------------------------------------------------
  std::string node;
  switch (handler.reg) {
    case extractor::RegKind::kMiscDevice: {
      // Fixed rule: the .name field is the device name. This is the
      // conventional case and is wrong whenever .nodename is set.
      auto resolved = index_->ResolveStringExpr(handler.name_expr);
      if (resolved) node = "/dev/" + *resolved;
      break;
    }
    case extractor::RegKind::kDeviceCreate: {
      std::string fmt = handler.create_fmt;
      std::string instantiated;
      for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == 'd') {
          instantiated += handler.create_arg;
          ++i;
          continue;
        }
        instantiated.push_back(fmt[i]);
      }
      if (!instantiated.empty()) node = "/dev/" + instantiated;
      break;
    }
    case extractor::RegKind::kProcCreate:
    case extractor::RegKind::kUnreferenced:
      return result;  // Outside the modeled registration patterns.
  }
  if (node.empty()) return result;

  // -- Rule 2: command discovery (switch cases only, bounded delegation) ----
  struct Found {
    std::string label;
    std::string sub_fn;
  };
  std::vector<Found> commands;
  std::deque<std::pair<std::string, int>> worklist;
  worklist.push_back({handler.ioctl_fn, 1});
  std::unordered_set<std::string> visited;
  while (!worklist.empty()) {
    auto [fn_name, depth] = worklist.front();
    worklist.pop_front();
    if (depth > kMaxDelegationDepth) continue;
    if (!visited.insert(fn_name).second) continue;
    const ksrc::CFunction* fn = index_->FindFunction(fn_name);
    if (!fn) continue;
    for (const auto& sw : ksrc::FindSwitches(*fn)) {
      for (const auto& arm : sw.cases) {
        Found found;
        found.label = arm.label;  // Raw label — no _IOC_NR reversal.
        ksrc::CFunction pseudo;
        pseudo.body_tokens = arm.tokens;
        auto calls = ksrc::FindCalls(pseudo);
        if (!calls.empty()) found.sub_fn = calls[0].callee;
        commands.push_back(std::move(found));
      }
    }
    // Follow plain delegation (calls passing the command parameter).
    for (const auto& call : ksrc::FindCalls(*fn)) {
      for (const auto& arg : call.args) {
        for (const auto& word : util::SplitWhitespace(arg)) {
          if (word == "command" || word == "cmd") {
            worklist.push_back({call.callee, depth + 1});
          }
        }
      }
    }
  }
  if (commands.empty()) return result;  // e.g. table-based dispatch.

  // -- Spec assembly with machine-generated names ----------------------------
  const std::string id = HashedId(handler.fops_var);
  const std::string res = "fd_" + id;
  result.spec.origin = "syzdescribe:" + id;
  result.spec.Add(ResourceDef{res, "fd"});

  SyscallDef open;
  open.name = "openat";
  open.variant = id;
  open.params.push_back({"fd", Type::ConstValue(0, 64), false});
  open.params.push_back({"file", Type::Ptr(Dir::kIn, Type::String(node)),
                         false});
  open.params.push_back({"flags", Type::ConstValue(2, 32), false});
  open.params.push_back({"mode", Type::ConstValue(0, 32), false});
  open.returns_resource = res;
  result.spec.Add(std::move(open));
  result.syscall_count++;

  std::unordered_set<std::string> described_structs;
  int call_index = 0;
  for (const Found& cmd : commands) {
    // Recover the payload struct structurally, if any.
    std::string struct_name;
    if (!cmd.sub_fn.empty()) {
      if (const ksrc::CFunction* sub = index_->FindFunction(cmd.sub_fn)) {
        for (const auto& copy : ksrc::FindUserCopies(*sub)) {
          if (!copy.type_name.empty()) struct_name = copy.type_name;
        }
      }
    }
    std::string spec_struct;
    if (!struct_name.empty()) {
      spec_struct = "s_" + id + "_" + struct_name;
      if (!described_structs.count(spec_struct)) {
        const ksrc::CStructDef* def = index_->FindStruct(struct_name);
        if (def) {
          StructDef out;
          out.name = spec_struct;
          out.is_union = def->is_union;
          int field_index = 0;
          for (const auto& f : def->fields) {
            Field field;
            field.name = util::Format("field_%d", field_index++);
            int bits = ScalarBitsOf(f.type_text);
            int64_t len = f.array_len;
            if (len < 0 && !f.array_len_text.empty()) {
              len = static_cast<int64_t>(
                  index_->ConstValue(f.array_len_text).value_or(1));
            }
            bool is_array = f.array_len >= 0 || !f.array_len_text.empty();
            if (is_array) {
              field.type =
                  len > 0 ? Type::Array(Type::Int(bits),
                                        static_cast<uint64_t>(len))
                          : Type::Array(Type::Int(bits));
            } else if (util::StartsWith(f.type_text, "struct ")) {
              // Nested structs degrade to byte blobs (no semantics).
              uint64_t size = index_->SizeOf(f.type_text);
              field.type = Type::Array(Type::Int(8), size ? size : 8);
            } else {
              field.type = Type::Int(bits);
            }
            out.fields.push_back(std::move(field));
          }
          described_structs.insert(spec_struct);
          result.spec.Add(std::move(out));
          result.type_count++;
        } else {
          spec_struct.clear();
        }
      }
    }

    SyscallDef call;
    call.name = "ioctl";
    call.variant = util::Format("%s_%d", id.c_str(), call_index++);
    call.params.push_back({"fd", Type::Resource(res), false});
    call.params.push_back({"cmd", Type::Const(cmd.label), false});
    if (spec_struct.empty()) {
      call.params.push_back(
          {"arg", Type::Ptr(Dir::kIn, Type::Array(Type::Int(8))), false});
    } else {
      call.params.push_back(
          {"arg", Type::Ptr(Dir::kIn, Type::StructRef(spec_struct)), false});
    }
    result.spec.Add(std::move(call));
    result.syscall_count++;

    // Duplicate description with an untyped payload (the atypical
    // repeated-description behaviour the paper calls out in Table 5).
    if (!spec_struct.empty()) {
      SyscallDef dup;
      dup.name = "ioctl";
      dup.variant = util::Format("%s_%d", id.c_str(), call_index++);
      dup.params.push_back({"fd", Type::Resource(res), false});
      dup.params.push_back({"cmd", Type::Const(cmd.label), false});
      dup.params.push_back(
          {"arg", Type::Ptr(Dir::kIn, Type::Array(Type::Int(8))), false});
      result.spec.Add(std::move(dup));
      result.syscall_count++;
    }
  }
  result.generated = true;
  return result;
}

}  // namespace kernelgpt::baseline
