#include "llm/engine.h"

#include <algorithm>
#include <unordered_set>

#include "ksrc/body_analysis.h"
#include "syzlang/printer.h"
#include "util/fault.h"
#include "util/strings.h"

namespace kernelgpt::llm {

namespace {

using ksrc::CFunction;
using ksrc::CToken;
using ksrc::CTokKind;
using util::Format;

/// First interesting call inside a switch-arm token sequence.
std::optional<ksrc::CallSite>
FirstCallInArm(const std::vector<CToken>& tokens)
{
  CFunction pseudo;
  pseudo.body_tokens = tokens;
  auto calls = ksrc::FindCalls(pseudo);
  if (calls.empty()) return std::nullopt;
  return calls.front();
}

/// True when `fn` has a parameter with the given name.
bool
HasParam(const CFunction& fn, const std::string& name)
{
  for (const auto& p : fn.params) {
    if (p.name == name) return true;
  }
  return false;
}

/// Scans body tokens for `if ( level != MACRO )`.
std::string
FindLevelGuard(const CFunction& fn)
{
  const auto& toks = fn.body_tokens;
  for (size_t i = 0; i + 5 < toks.size(); ++i) {
    if (toks[i].IsIdent("if") && toks[i + 1].Is("(") &&
        toks[i + 2].IsIdent("level") && toks[i + 3].Is("!=") &&
        toks[i + 4].kind == CTokKind::kIdent && toks[i + 5].Is(")")) {
      return toks[i + 4].text;
    }
  }
  return "";
}

/// Scans a helper body for validation constraints on `var`.`field`.
std::vector<FieldConstraint>
ScanConstraints(const CFunction& fn, const std::string& var)
{
  std::vector<FieldConstraint> out;
  const auto& toks = fn.body_tokens;
  for (size_t i = 0; i + 6 < toks.size(); ++i) {
    if (!toks[i].IsIdent("if") || !toks[i + 1].Is("(")) continue;
    size_t j = i + 2;
    bool negated = false;
    if (toks[j].Is("!")) {
      negated = true;
      ++j;
    }
    if (!(j + 2 < toks.size() && toks[j].kind == CTokKind::kIdent &&
          toks[j].text == var && toks[j + 1].Is("."))) {
      continue;
    }
    std::string field = toks[j + 2].text;
    size_t k = j + 3;
    FieldConstraint c;
    c.field = field;
    if (negated && toks[k].Is(")")) {
      c.kind = FieldConstraint::Kind::kNonZero;
      out.push_back(c);
      continue;
    }
    if (k + 1 >= toks.size()) continue;
    if (toks[k].Is("!=") && toks[k + 1].kind == CTokKind::kNumber) {
      c.kind = FieldConstraint::Kind::kEquals;
      c.a = static_cast<int64_t>(toks[k + 1].number);
      out.push_back(c);
      continue;
    }
    if (toks[k].Is("<") && toks[k + 1].kind == CTokKind::kNumber) {
      // Range form: param.f < A || param.f > B.
      int64_t lo = static_cast<int64_t>(toks[k + 1].number);
      // Look for the matching upper bound.
      for (size_t m = k + 2; m + 4 < toks.size() && m < k + 12; ++m) {
        if (toks[m].Is("||") && toks[m + 1].IsIdent(var.c_str()) &&
            toks[m + 2].Is(".") && toks[m + 3].text == field &&
            toks[m + 4].Is(">")) {
          if (m + 5 < toks.size() &&
              toks[m + 5].kind == CTokKind::kNumber) {
            c.kind = FieldConstraint::Kind::kRange;
            c.a = lo;
            c.b = static_cast<int64_t>(toks[m + 5].number);
            out.push_back(c);
          }
          break;
        }
      }
      continue;
    }
    if (toks[k].Is(">") && toks[k + 1].kind == CTokKind::kNumber) {
      c.kind = FieldConstraint::Kind::kUpperBound;
      c.b = static_cast<int64_t>(toks[k + 1].number);
      out.push_back(c);
      continue;
    }
  }
  return out;
}

/// Scans a helper body for `var.field = ...` writes (output fields).
std::vector<std::string>
ScanOutWrites(const CFunction& fn, const std::string& var)
{
  std::vector<std::string> out;
  const auto& toks = fn.body_tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind == CTokKind::kIdent && toks[i].text == var &&
        toks[i + 1].Is(".") && toks[i + 2].kind == CTokKind::kIdent &&
        toks[i + 3].Is("=")) {
      // Exclude == comparisons (lexer emits == as one token, so "=" here
      // is a genuine assignment).
      bool seen = false;
      for (const auto& name : out) seen = seen || name == toks[i + 2].text;
      if (!seen) out.push_back(toks[i + 2].text);
    }
  }
  return out;
}

/// Integer width of a C scalar type name, or 0 when not scalar.
int
ScalarBits(const std::string& type_text)
{
  const std::string t(util::Trim(type_text));
  if (t == "__u8" || t == "__s8" || t == "u8" || t == "char" || t == "bool") {
    return 8;
  }
  if (t == "__u16" || t == "__s16" || t == "u16" || t == "__le16" ||
      t == "__be16" || t == "short") {
    return 16;
  }
  if (t == "__u32" || t == "__s32" || t == "u32" || t == "__le32" ||
      t == "int" || t == "unsigned" || t == "unsigned int" ||
      t == "uint32_t" || t == "int32_t") {
    return 32;
  }
  if (t == "__u64" || t == "__s64" || t == "u64" || t == "__le64" ||
      t == "long" || t == "unsigned long" || t == "uint64_t" ||
      t == "int64_t" || t == "size_t") {
    return 64;
  }
  return 0;
}

bool
IsPowerOfTwo(uint64_t v)
{
  return v != 0 && (v & (v - 1)) == 0;
}

/// Longest common prefix of two strings.
size_t
CommonPrefix(const std::string& a, const std::string& b)
{
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

/// Heuristic: is `name` a length/count field?
bool
LooksLikeLenField(const std::string& name)
{
  std::string n = util::ToLower(name);
  if (n == "len" || n == "count" || n == "nent" || n == "nregions") {
    return true;
  }
  if (util::StartsWith(n, "n_") || util::StartsWith(n, "num_")) return true;
  if (util::EndsWith(n, "_len") || util::EndsWith(n, "_alen")) return true;
  return false;
}

}  // namespace

std::vector<FlagSetGuess>
DiscoverFlagGroups(const ksrc::CFile& file)
{
  // Group macros with power-of-two values by shared name prefix (>= 4
  // chars up to the last '_'); groups of >= 2 become candidate flag sets.
  std::vector<FlagSetGuess> groups;
  // Macros used inside _IO* command encodings are sequence numbers, not
  // flag bits; exclude them (and anything *_NR by convention).
  std::unordered_set<std::string> cmd_related;
  for (const auto& m : file.macros) {
    if (!util::StartsWith(m.value_text, "_IO")) continue;
    for (const auto& other : file.macros) {
      if (util::Contains(m.value_text, other.name)) {
        cmd_related.insert(other.name);
      }
    }
  }
  // Candidate bit macros: power-of-two values, not command numbers, and
  // not dimension/limit constants (LEN/MAX/SIZE/...).
  auto looks_like_limit = [](const std::string& name) {
    for (const char* word : {"LEN", "MAX", "SIZE", "MIN", "MAGIC", "COUNT"}) {
      if (util::Contains(name, word)) return true;
    }
    return false;
  };
  std::vector<const ksrc::CMacro*> bits;
  for (const auto& m : file.macros) {
    if (!m.value || !IsPowerOfTwo(*m.value)) continue;
    if (util::EndsWith(m.name, "_NR")) continue;
    if (cmd_related.count(m.name)) continue;
    if (looks_like_limit(m.name)) continue;
    bits.push_back(&m);
  }
  // Group by module prefix (the first '_'-separated segment); a file has
  // at most a handful of flag families and they share the module prefix.
  std::vector<std::string> prefixes;
  for (const auto* m : bits) {
    std::string prefix = m->name.substr(0, m->name.find('_'));
    bool seen = false;
    for (const auto& p : prefixes) seen = seen || p == prefix;
    if (!seen) prefixes.push_back(prefix);
  }
  for (const auto& prefix : prefixes) {
    FlagSetGuess group;
    for (const auto* m : bits) {
      if (m->name.substr(0, m->name.find('_')) == prefix) {
        group.member_macros.push_back(m->name);
      }
    }
    if (group.member_macros.size() < 2) continue;
    // Readable set name from the longest shared member prefix.
    std::string shared = group.member_macros[0];
    for (const auto& name : group.member_macros) {
      shared = shared.substr(0, CommonPrefix(shared, name));
    }
    while (!shared.empty() && shared.back() == '_') shared.pop_back();
    group.set_name = util::ToLower(shared) + "_flag_set";
    groups.push_back(std::move(group));
  }
  return groups;
}

SimulatedBackend::SimulatedBackend(const ksrc::DefinitionIndex* index,
                               ModelProfile profile, TokenMeter* meter)
    : index_(index), profile_(std::move(profile)), meter_(meter) {}

void
SimulatedBackend::Meter(const std::string& stage, const std::string& target,
                      std::string prompt, std::string response)
{
  // Every query method funnels through here, so one fault point covers
  // the whole backend surface: a rule matching the profile name makes
  // that backend "die" mid-query, which SpecGenService fails over.
  KERNELGPT_FAULT_POINT("llm.query",
                        profile_.name + "/" + stage + ":" + target);
  if (!meter_) return;
  // Truncate the prompt to the model's context window (approximate 4
  // chars/token); content beyond the window is never seen by the model —
  // the ablation harness relies on this.
  size_t max_chars = profile_.context_tokens * 4;
  if (prompt.size() > max_chars) prompt.resize(max_chars);
  QueryRecord record;
  record.stage = stage;
  record.target = target;
  record.prompt = std::move(prompt);
  record.response = std::move(response);
  meter_->Record(std::move(record));
}

std::string
SimulatedBackend::ReverseMapModifiedLabel(const std::string& nr_label) const
{
  // Find the full-command macro whose _IOC expression references the NR
  // label, e.g. DM_LIST_DEVICES = _IOWR(DM_IOCTL, DM_LIST_DEVICES_NR, ...).
  for (const auto& file : index_->files()) {
    for (const auto& m : file.macros) {
      if (!util::StartsWith(m.value_text, "_IO")) continue;
      if (util::Contains(m.value_text, nr_label)) return m.name;
    }
  }
  return nr_label;
}

IdentifierAnalysis
SimulatedBackend::AnalyzeIdentifiers(const std::string& fn_name,
                                   const std::string& usage,
                                   const std::string& module, int depth)
{
  IdentifierAnalysis result;
  const CFunction* fn = index_->FindFunction(fn_name);
  std::string code = index_->ExtractCode(fn_name);
  std::string prompt = Format(
      "Please generate the Syzkaller specification for the following "
      "handler.\nIf the command is unclear and dependent on another "
      "function, list it in the UNKNOWN section.\n\n## Unknown IOCTL\n- "
      "FUNC: %s\n- USAGE: %s\n\n## Source Code of Relative Functions\n%s",
      fn_name.c_str(), usage.c_str(), code.c_str());

  if (!fn || fn->body_tokens.empty()) {
    Meter("identifier", module + ":" + fn_name, prompt,
          "- UNKNOWN: (no source available)");
    return result;
  }
  if (depth > profile_.max_delegation_depth) {
    // The model loses the thread on deep indirection (the failure the
    // paper's §5.1.3 attributes to multiply-delegated handlers).
    Meter("identifier", module + ":" + fn_name, prompt,
          "- (unable to determine identifier values)");
    return result;
  }

  auto mods = ksrc::FindCmdModifications(*fn);
  auto switches = ksrc::FindSwitches(*fn);
  std::unordered_set<std::string> claimed_callees;

  for (const auto& sw : switches) {
    bool modified = false;
    for (const auto& mod : mods) {
      if (mod.dest == sw.subject && mod.op == "_IOC_NR") modified = true;
    }
    bool command_like = HasParam(*fn, sw.subject) || modified;
    if (!command_like) continue;

    for (const auto& arm : sw.cases) {
      CommandFinding finding;
      finding.from_modified_switch = modified;
      if (modified) {
        bool mangle =
            !profile_.understands_ioc_nr ||
            profile_.Decide("wrongid/v66:" + module + ":" + arm.label,
                            profile_.wrong_identifier_rate);
        if (mangle) {
          finding.macro = arm.label;  // The raw NR constant — wrong value.
          finding.identifier_mangled = true;
        } else {
          finding.macro = ReverseMapModifiedLabel(arm.label);
        }
      } else {
        finding.macro = arm.label;
      }
      if (auto call = FirstCallInArm(arm.tokens)) {
        finding.sub_function = call->callee;
        claimed_callees.insert(call->callee);
      }
      if (profile_.Decide("miss/v66:" + module + ":" + finding.macro,
                          profile_.miss_command_rate)) {
        continue;  // Silently omitted by the model.
      }
      result.commands.push_back(std::move(finding));
    }
  }

  // Table-dispatch comprehension: a referenced variable with positional
  // {CMD, fn} initializer entries.
  if (profile_.understands_table_lookup) {
    for (const CToken& t : fn->body_tokens) {
      if (t.kind != CTokKind::kIdent) continue;
      const ksrc::CVarDef* var = index_->FindVar(t.text);
      if (!var || var->init.empty()) continue;
      for (const auto& entry : var->init) {
        if (!entry.field.empty()) continue;
        // Entry text looks like "{ DM_VERSION , dm_do_version }".
        auto words = util::SplitWhitespace(
            util::ReplaceAll(util::ReplaceAll(entry.value_text, "{", " "),
                             "}", " "));
        std::vector<std::string> idents;
        for (const auto& w : words) {
          if (w != ",") idents.push_back(w);
        }
        if (idents.size() != 2) continue;
        CommandFinding finding;
        finding.macro = idents[0];
        finding.sub_function = idents[1];
        claimed_callees.insert(idents[1]);
        if (!profile_.Decide("miss/v66:" + module + ":" + finding.macro,
                             profile_.miss_command_rate)) {
          result.commands.push_back(std::move(finding));
        }
      }
    }
  }

  // Delegation: calls forwarding the command parameter to another
  // function we have not seen → UNKNOWN items for the next iteration.
  std::string cmd_param;
  for (const auto& p : fn->params) {
    if (p.name == "command" || p.name == "cmd" || p.name == "optname") {
      cmd_param = p.name;
    }
  }
  if (!cmd_param.empty()) {
    for (const auto& call : ksrc::FindCalls(*fn)) {
      if (claimed_callees.count(call.callee)) continue;
      bool passes_cmd = false;
      for (const auto& arg : call.args) {
        for (const auto& word : util::SplitWhitespace(arg)) {
          if (word == cmd_param) passes_cmd = true;
        }
      }
      if (!passes_cmd) continue;
      if (!index_->FindFunction(call.callee)) continue;
      Unknown unknown;
      unknown.kind = Unknown::Kind::kFunction;
      unknown.identifier = call.callee;
      unknown.usage = call.text;
      result.unknowns.push_back(std::move(unknown));
    }
  }

  result.guard_level_macro = FindLevelGuard(*fn);

  // Render the response for metering / transcripts.
  std::string response = "## Syzkaller Specification\n";
  for (const auto& c : result.commands) {
    response += Format("- %s: handled by %s\n", c.macro.c_str(),
                       c.sub_function.c_str());
  }
  for (const auto& u : result.unknowns) {
    response += Format("- UNKNOWN\n  - FUNC: %s\n  - USAGE: %s\n",
                       u.identifier.c_str(), u.usage.c_str());
  }
  Meter("identifier", module + ":" + fn_name, prompt, response);
  return result;
}

ArgTypeAnalysis
SimulatedBackend::AnalyzeArgumentType(const std::string& fn_name,
                                    const std::string& module)
{
  ArgTypeAnalysis result;
  const CFunction* fn = index_->FindFunction(fn_name);
  std::string code = index_->ExtractCode(fn_name);
  std::string prompt = Format(
      "Please determine the argument type of the following command "
      "handler and any semantic constraints it enforces.\n\n## Source "
      "Code\n%s",
      code.c_str());
  if (!fn) {
    Meter("type", module + ":" + fn_name, prompt, "- (no source)");
    return result;
  }

  bool reads = false;
  bool writes = false;
  std::string var;
  for (const auto& copy : ksrc::FindUserCopies(*fn)) {
    if (copy.from_user) {
      reads = true;
      if (!copy.type_name.empty()) result.arg_struct = copy.type_name;
      var = copy.dest_var;
    } else {
      writes = true;
      if (result.arg_struct.empty()) result.arg_struct = copy.type_name;
      if (var.empty()) var = copy.dest_var;
    }
  }
  if (reads && writes) {
    result.dir = syzlang::Dir::kInOut;
  } else if (writes) {
    result.dir = syzlang::Dir::kOut;
  } else {
    result.dir = syzlang::Dir::kIn;
  }
  if (!var.empty()) {
    result.constraints = ScanConstraints(*fn, var);
    result.out_fields = ScanOutWrites(*fn, var);
  }

  std::string response = Format("- struct: %s\n- dir: %s\n- constraints: %zu",
                                result.arg_struct.c_str(),
                                syzlang::DirName(result.dir),
                                result.constraints.size());
  Meter("type", module + ":" + fn_name, prompt, response);
  return result;
}

StructRecovery
SimulatedBackend::RecoverStruct(const std::string& struct_name,
                              const std::string& module,
                              const std::vector<FieldConstraint>& constraints,
                              const std::vector<std::string>& out_fields)
{
  StructRecovery result;
  const ksrc::CStructDef* def = index_->FindStruct(struct_name);
  std::string code = index_->ExtractCode(struct_name);
  std::string prompt = Format(
      "Please translate the following kernel type definition into a "
      "Syzkaller description, capturing semantic relations between "
      "fields.\n\n## Source Code\n%s",
      code.c_str());
  if (!def) {
    Meter("type", module + ":" + struct_name, prompt, "- (no source)");
    return result;
  }

  // Flag groups in the defining file, for flags-typed fields.
  std::vector<FlagSetGuess> groups;
  for (const auto& file : index_->files()) {
    if (file.FindStruct(struct_name)) {
      groups = DiscoverFlagGroups(file);
      break;
    }
  }

  result.def.name = struct_name;
  result.def.is_union = def->is_union;

  auto constraint_for = [&](const std::string& field) -> const FieldConstraint* {
    for (const auto& c : constraints) {
      if (c.field == field) return &c;
    }
    return nullptr;
  };
  auto is_out = [&](const std::string& field) {
    for (const auto& f : out_fields) {
      if (f == field) return true;
    }
    return false;
  };

  for (const auto& cf : def->fields) {
    syzlang::Field field;
    field.name = cf.name;
    int bits = ScalarBits(cf.type_text);

    // Array length (fixed, macro-named, or flexible).
    int64_t array_len = cf.array_len;
    if (array_len < 0 && !cf.array_len_text.empty()) {
      array_len = static_cast<int64_t>(
          index_->ConstValue(cf.array_len_text).value_or(1));
    }
    bool is_array = cf.array_len >= 0 || !cf.array_len_text.empty();

    if (util::StartsWith(cf.type_text, "struct ") ||
        (bits == 0 && !cf.is_pointer && !is_array)) {
      // Nested struct by value.
      std::string nested = cf.type_text;
      if (util::StartsWith(nested, "struct ")) nested = nested.substr(7);
      field.type = syzlang::Type::StructRef(nested);
      Unknown unknown;
      unknown.kind = Unknown::Kind::kType;
      unknown.identifier = nested;
      unknown.usage = "field " + cf.name + " of " + struct_name;
      result.unknowns.push_back(std::move(unknown));
    } else if (is_array) {
      if (bits == 0) bits = 8;
      field.type = array_len > 0
                       ? syzlang::Type::Array(syzlang::Type::Int(bits),
                                              static_cast<uint64_t>(array_len))
                       : syzlang::Type::Array(syzlang::Type::Int(bits));
    } else {
      if (bits == 0) bits = cf.is_pointer ? 64 : 32;
      // Semantic enrichment order: len-of > flags > constraint > plain.
      bool typed = false;
      if (profile_.understands_len_semantics && LooksLikeLenField(cf.name)) {
        // Find the array sibling this counts: name containment first,
        // unique array fallback.
        std::string target;
        int array_siblings = 0;
        for (const auto& other : def->fields) {
          bool other_is_array =
              other.array_len >= 0 || !other.array_len_text.empty();
          if (!other_is_array) continue;
          if (other.type_text != "char") ++array_siblings;
          if (util::Contains(util::ToLower(cf.name),
                             util::ToLower(other.name))) {
            target = other.name;
          }
        }
        if (target.empty() && array_siblings == 1) {
          for (const auto& other : def->fields) {
            if (other.array_len >= 0 || !other.array_len_text.empty()) {
              if (other.type_text != "char") target = other.name;
            }
          }
        }
        if (!target.empty()) {
          field.type = syzlang::Type::Len(target, bits);
          typed = true;
        }
      }
      std::string lower_name = util::ToLower(cf.name);
      bool flags_named =
          lower_name == "flags" || util::EndsWith(lower_name, "_flags");
      if (!flags_named && util::StartsWith(lower_name, "flags")) {
        flags_named = true;
        for (size_t ci = 5; ci < lower_name.size(); ++ci) {
          if (!std::isdigit(static_cast<unsigned char>(lower_name[ci]))) {
            flags_named = false;
          }
        }
      }
      if (!typed && flags_named && !groups.empty()) {
        field.type = syzlang::Type::Flags(groups[0].set_name, bits);
        result.flag_sets.push_back(groups[0]);
        typed = true;
      }
      if (!typed) {
        const FieldConstraint* c = constraint_for(cf.name);
        if (c) {
          switch (c->kind) {
            case FieldConstraint::Kind::kRange:
              field.type = syzlang::Type::IntRange(bits, c->a, c->b);
              break;
            case FieldConstraint::Kind::kEquals:
              field.type = syzlang::Type::ConstValue(
                  static_cast<uint64_t>(c->a), bits);
              break;
            case FieldConstraint::Kind::kNonZero:
              field.type = syzlang::Type::IntRange(
                  bits, 1,
                  bits >= 63 ? (1LL << 62) : (1LL << bits) - 1);
              break;
            case FieldConstraint::Kind::kUpperBound:
              field.type = syzlang::Type::IntRange(bits, 0, c->b);
              break;
          }
          typed = true;
        }
      }
      if (!typed) {
        // Occasional width slip (the §5.1.3 "incorrect types").
        if (profile_.Decide(
                "wrongtype:" + module + ":" + struct_name + ":" + cf.name,
                profile_.wrong_type_rate)) {
          bits = bits == 64 ? 32 : 64;
        }
        field.type = syzlang::Type::Int(bits);
      }
      field.is_out = is_out(cf.name);
    }
    result.def.fields.push_back(std::move(field));
  }

  std::string response =
      "## Specification\n" +
      syzlang::PrintDecl(syzlang::Decl::Make(result.def));
  Meter("type", module + ":" + struct_name, prompt, response);
  return result;
}

DependencyAnalysis
SimulatedBackend::AnalyzeDependencies(const std::string& fn_name,
                                    const std::string& module)
{
  DependencyAnalysis result;
  const CFunction* fn = index_->FindFunction(fn_name);
  std::string code = index_->ExtractCode(fn_name);
  std::string prompt = Format(
      "Does the return value of this function act as a resource consumed "
      "by other syscalls?\n\n## Source Code\n%s",
      code.c_str());
  if (!fn || !profile_.follows_dependencies) {
    Meter("dependency", module + ":" + fn_name, prompt, "- no");
    return result;
  }
  for (const auto& call : ksrc::FindCalls(*fn)) {
    if (call.callee != "anon_inode_getfd" || call.args.size() < 2) continue;
    DependencyAnalysis::CreatedResource created;
    // args[0] is the "name" literal, args[1] is &fops.
    std::string label(util::Trim(call.args[0]));
    if (label.size() >= 2 && label.front() == '"' && label.back() == '"') {
      label = label.substr(1, label.size() - 2);
    }
    created.label = label;
    std::string fops(util::Trim(call.args[1]));
    if (!fops.empty() && fops.front() == '&') {
      fops = std::string(util::Trim(fops.substr(1)));
    }
    created.fops_var = fops;
    result.created.push_back(std::move(created));
  }
  std::string response = result.created.empty()
                             ? "- no resource creation found"
                             : Format("- creates fd bound to %s",
                                      result.created[0].fops_var.c_str());
  Meter("dependency", module + ":" + fn_name, prompt, response);
  return result;
}

std::string
SimulatedBackend::InferDeviceNode(const extractor::DriverHandler& handler,
                                const std::string& module)
{
  std::string prompt = Format(
      "Determine the device file path for the handler registered as:\n%s",
      handler.misc_var.empty()
          ? (handler.create_fmt.empty() ? handler.proc_path.c_str()
                                        : handler.create_fmt.c_str())
          : index_->ExtractCode(handler.misc_var).c_str());

  std::string node;
  switch (handler.reg) {
    case extractor::RegKind::kMiscDevice: {
      const std::string& expr =
          (profile_.understands_nodename && !handler.nodename_expr.empty())
              ? handler.nodename_expr
              : handler.name_expr;
      auto resolved = index_->ResolveStringExpr(expr);
      if (resolved) node = "/dev/" + *resolved;
      break;
    }
    case extractor::RegKind::kDeviceCreate: {
      if (profile_.understands_device_create) {
        std::string fmt = handler.create_fmt;
        std::string instantiated;
        for (size_t i = 0; i < fmt.size(); ++i) {
          if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == 'd') {
            instantiated += handler.create_arg;
            ++i;
            continue;
          }
          instantiated.push_back(fmt[i]);
        }
        if (!instantiated.empty()) node = "/dev/" + instantiated;
      } else {
        node = "/dev/" + handler.create_fmt;  // Raw format — wrong.
      }
      break;
    }
    case extractor::RegKind::kProcCreate:
      if (!handler.proc_path.empty()) node = "/proc/" + handler.proc_path;
      break;
    case extractor::RegKind::kUnreferenced:
      break;
  }
  Meter("identifier", module + ":device-node", prompt,
        node.empty() ? "- unknown" : "- " + node);
  return node;
}

SocketCreateAnalysis
SimulatedBackend::AnalyzeSocketCreate(const std::string& fn_name,
                                    const std::string& module)
{
  SocketCreateAnalysis result;
  const CFunction* fn = index_->FindFunction(fn_name);
  std::string code = index_->ExtractCode(fn_name);
  std::string prompt = Format(
      "Which socket type and protocol does this create function "
      "accept?\n\n## Source Code\n%s",
      code.c_str());
  if (!fn) {
    Meter("identifier", module + ":" + fn_name, prompt, "- unknown");
    return result;
  }
  const auto& toks = fn->body_tokens;
  for (size_t i = 0; i + 6 < toks.size(); ++i) {
    // if ( sock -> type != SOCK_X )
    if (toks[i].IsIdent("sock") && toks[i + 1].Is("->") &&
        toks[i + 2].IsIdent("type") && toks[i + 3].Is("!=") &&
        toks[i + 4].kind == CTokKind::kIdent) {
      result.type_macro = toks[i + 4].text;
    }
    // if ( protocol != N )
    if (toks[i].IsIdent("protocol") && toks[i + 1].Is("!=") &&
        toks[i + 2].kind == CTokKind::kNumber) {
      result.protocol = toks[i + 2].number;
      result.protocol_checked = true;
    }
  }
  Meter("identifier", module + ":" + fn_name, prompt,
        Format("- type: %s, protocol: %llu",
               result.type_macro.empty() ? "any" : result.type_macro.c_str(),
               static_cast<unsigned long long>(result.protocol)));
  return result;
}

}  // namespace kernelgpt::llm
