#include "llm/profile.h"

#include "util/rng.h"

namespace kernelgpt::llm {

bool
ModelProfile::Decide(const std::string& key, double rate) const
{
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  uint64_t h = util::HashCombine(util::StableHash(name),
                                 util::StableHash(key));
  // Map to [0, 1) with 53 bits of precision.
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return unit < rate;
}

// Gpt4()/Gpt4o()/Gpt35() are defined in registry.cc: the profile data is
// registered in the default BackendRegistry and the legacy accessors read
// it from there.

}  // namespace kernelgpt::llm
