#include "llm/profile.h"

#include "util/rng.h"

namespace kernelgpt::llm {

bool
ModelProfile::Decide(const std::string& key, double rate) const
{
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  uint64_t h = util::HashCombine(util::StableHash(name),
                                 util::StableHash(key));
  // Map to [0, 1) with 53 bits of precision.
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return unit < rate;
}

ModelProfile
Gpt4()
{
  ModelProfile p;
  p.name = "gpt-4";
  p.max_delegation_depth = 6;
  p.miss_command_rate = 0.015;
  p.wrong_identifier_rate = 0.02;  // Only applies to modified identifiers.
  p.wrong_type_rate = 0.012;
  p.invalid_decl_rate = 0.055;
  p.repair_success_rate = 0.86;
  p.context_tokens = 128000;
  return p;
}

ModelProfile
Gpt4o()
{
  ModelProfile p = Gpt4();
  p.name = "gpt-4o";
  // Near-identical to GPT-4 (the paper found them comparable); its
  // deterministic draws still differ because the name feeds the hash.
  p.miss_command_rate = 0.012;
  p.invalid_decl_rate = 0.05;
  p.repair_success_rate = 0.9;
  return p;
}

ModelProfile
Gpt35()
{
  ModelProfile p;
  p.name = "gpt-3.5";
  p.understands_ioc_nr = false;
  p.understands_table_lookup = false;
  p.understands_len_semantics = false;
  p.understands_device_create = true;
  p.understands_nodename = true;
  p.max_delegation_depth = 2;
  p.miss_command_rate = 0.35;
  p.wrong_identifier_rate = 0.25;
  p.wrong_type_rate = 0.08;
  p.invalid_decl_rate = 0.18;
  p.repair_success_rate = 0.5;
  p.context_tokens = 16000;
  return p;
}

}  // namespace kernelgpt::llm
