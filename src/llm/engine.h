/// \file
/// The simulated analysis LLM. Each method corresponds to one query of
/// the paper's pipeline: it renders a realistic prompt (metered for the
/// §5.1.1 cost analysis), performs a semantic analysis of the extracted
/// source at the fidelity the capability profile allows, and reports both
/// findings and "UNKNOWN" items for the iterative loop to chase — exactly
/// the contract of Figure 6.

#ifndef KERNELGPT_LLM_ENGINE_H_
#define KERNELGPT_LLM_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "extractor/handler_finder.h"
#include "ksrc/definition_index.h"
#include "llm/profile.h"
#include "llm/token_meter.h"
#include "syzlang/ast.h"

namespace kernelgpt::llm {

/// A missing function/type the model asks for (Algorithm 1's `unknown`).
struct Unknown {
  enum class Kind { kFunction, kType };
  Kind kind = Kind::kFunction;
  std::string identifier;
  std::string usage;  ///< Invocation/usage context presented back next step.
};

/// One command discovered during identifier deduction.
struct CommandFinding {
  std::string macro;         ///< Constant to use as the cmd/optname value.
  std::string sub_function;  ///< Function implementing the command.
  bool from_modified_switch = false;  ///< Behind a _IOC_NR-style dispatch.
  bool identifier_mangled = false;    ///< Model emitted the wrong constant.
};

/// Result of one identifier-deduction query.
struct IdentifierAnalysis {
  std::vector<CommandFinding> commands;
  std::vector<Unknown> unknowns;
  /// Sockets: SOL_* guard observed (`if (level != SOL_RDS) ...`).
  std::string guard_level_macro;
};

/// A semantic constraint recovered from validation code in a handler.
struct FieldConstraint {
  enum class Kind { kRange, kEquals, kNonZero, kUpperBound };
  std::string field;
  Kind kind = Kind::kRange;
  int64_t a = 0;  ///< Range low / equals value.
  int64_t b = 0;  ///< Range high / upper bound.
};

/// Result of analyzing one per-command helper for its argument type.
struct ArgTypeAnalysis {
  std::string arg_struct;  ///< "" when the command takes no pointer arg.
  syzlang::Dir dir = syzlang::Dir::kInOut;
  std::vector<FieldConstraint> constraints;
  std::vector<std::string> out_fields;  ///< Fields the kernel writes.
};

/// A flag set the model synthesized from a macro group.
struct FlagSetGuess {
  std::string set_name;
  std::vector<std::string> member_macros;
};

/// Result of recovering one struct definition.
struct StructRecovery {
  syzlang::StructDef def;
  std::vector<Unknown> unknowns;  ///< Nested struct types to fetch next.
  std::vector<FlagSetGuess> flag_sets;
};

/// Result of dependency analysis on one helper.
struct DependencyAnalysis {
  struct CreatedResource {
    std::string label;     ///< anon_inode_getfd name, e.g. "kvm-vm".
    std::string fops_var;  ///< Handler table the new fd is bound to.
  };
  std::vector<CreatedResource> created;
};

/// Result of analyzing a socket family's create() function.
struct SocketCreateAnalysis {
  std::string type_macro;      ///< Required SOCK_* macro ("" = any).
  uint64_t protocol = 0;       ///< Required protocol (0 = any).
  bool protocol_checked = false;
};

/// The analysis model bound to one kernel index and one profile.
class AnalysisEngine {
 public:
  AnalysisEngine(const ksrc::DefinitionIndex* index, ModelProfile profile,
                 TokenMeter* meter);

  const ModelProfile& profile() const { return profile_; }

  /// Stage 1 (one iteration): deduce identifier values from one function.
  /// `depth` is the current delegation depth (capability-bounded).
  IdentifierAnalysis AnalyzeIdentifiers(const std::string& fn_name,
                                        const std::string& usage,
                                        const std::string& module, int depth);

  /// Stage 2a: infer the argument struct, direction, validation
  /// constraints, and output fields of one per-command helper.
  ArgTypeAnalysis AnalyzeArgumentType(const std::string& fn_name,
                                      const std::string& module);

  /// Stage 2b: recover one struct definition as syzlang, enriched with the
  /// constraints/out-fields learned in 2a and (capability permitting)
  /// len-of and flags semantics.
  StructRecovery RecoverStruct(const std::string& struct_name,
                               const std::string& module,
                               const std::vector<FieldConstraint>& constraints,
                               const std::vector<std::string>& out_fields);

  /// Stage 3: find fd-creating calls (anon_inode_getfd) in a helper.
  DependencyAnalysis AnalyzeDependencies(const std::string& fn_name,
                                         const std::string& module);

  /// Infers the device node path from registration usage.
  std::string InferDeviceNode(const extractor::DriverHandler& handler,
                              const std::string& module);

  /// Analyzes a socket create() function for type/protocol gating.
  SocketCreateAnalysis AnalyzeSocketCreate(const std::string& fn_name,
                                           const std::string& module);

 private:
  /// Meters one exchange, truncating the prompt to the context window.
  void Meter(const std::string& stage, const std::string& target,
             std::string prompt, std::string response);

  std::string ReverseMapModifiedLabel(const std::string& nr_label) const;

  const ksrc::DefinitionIndex* index_;
  ModelProfile profile_;
  TokenMeter* meter_;
};

/// Scans one source file for groups of related bit-flag macros (shared
/// prefix, power-of-two values). Used for flags-type recovery.
std::vector<FlagSetGuess> DiscoverFlagGroups(const ksrc::CFile& file);

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_ENGINE_H_
