/// \file
/// The simulated analysis LLM — the reference llm::Backend. Each query
/// renders a realistic prompt (metered for the §5.1.1 cost analysis),
/// performs a semantic analysis of the extracted source at the fidelity
/// the capability profile allows, and reports both findings and
/// "UNKNOWN" items for the iterative loop to chase — exactly the
/// contract of Figure 6.

#ifndef KERNELGPT_LLM_ENGINE_H_
#define KERNELGPT_LLM_ENGINE_H_

#include <string>
#include <vector>

#include "ksrc/definition_index.h"
#include "llm/backend.h"
#include "llm/token_meter.h"

namespace kernelgpt::llm {

/// The simulated analysis model bound to one kernel index and one
/// capability profile. Every answer is a deterministic function of the
/// extracted source and hash-keyed profile draws.
class SimulatedBackend : public Backend {
 public:
  SimulatedBackend(const ksrc::DefinitionIndex* index, ModelProfile profile,
                   TokenMeter* meter);

  const ModelProfile& profile() const override { return profile_; }

  IdentifierAnalysis AnalyzeIdentifiers(const std::string& fn_name,
                                        const std::string& usage,
                                        const std::string& module,
                                        int depth) override;

  ArgTypeAnalysis AnalyzeArgumentType(const std::string& fn_name,
                                      const std::string& module) override;

  StructRecovery RecoverStruct(
      const std::string& struct_name, const std::string& module,
      const std::vector<FieldConstraint>& constraints,
      const std::vector<std::string>& out_fields) override;

  DependencyAnalysis AnalyzeDependencies(const std::string& fn_name,
                                         const std::string& module) override;

  std::string InferDeviceNode(const extractor::DriverHandler& handler,
                              const std::string& module) override;

  SocketCreateAnalysis AnalyzeSocketCreate(const std::string& fn_name,
                                           const std::string& module) override;

 private:
  /// Meters one exchange, truncating the prompt to the context window.
  void Meter(const std::string& stage, const std::string& target,
             std::string prompt, std::string response);

  std::string ReverseMapModifiedLabel(const std::string& nr_label) const;

  const ksrc::DefinitionIndex* index_;
  ModelProfile profile_;
  TokenMeter* meter_;
};

/// Scans one source file for groups of related bit-flag macros (shared
/// prefix, power-of-two values). Used for flags-type recovery.
std::vector<FlagSetGuess> DiscoverFlagGroups(const ksrc::CFile& file);

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_ENGINE_H_
