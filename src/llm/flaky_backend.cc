#include "llm/flaky_backend.h"

#include <utility>

#include "util/retry.h"

namespace kernelgpt::llm {

FlakyBackend::FlakyBackend(std::unique_ptr<Backend> delegate,
                           FlakyOptions options, TokenMeter* meter)
    : delegate_(std::move(delegate)),
      options_(std::move(options)),
      meter_(meter) {}

const ModelProfile&
FlakyBackend::profile() const
{
  return delegate_->profile();
}

void
FlakyBackend::BillRetries(const std::string& stage, const std::string& key)
{
  if (!meter_ || meter_->records().empty()) return;
  // Decide failures with a throwaway profile named after the wrapper so
  // the draws are independent of the delegate's own error draws.
  ModelProfile flake;
  flake.name = options_.name;
  // Copy out of the meter before re-recording: Record() can reallocate
  // the records vector and invalidate references into it.
  const std::string target = meter_->records().back().target;
  const size_t input_tokens = meter_->records().back().input_tokens;
  // The attempt schedule is the shared util::RetryPolicy's: attempt i
  // either fails its seeded draw (billed, retried) or succeeds (done);
  // the final attempt always succeeds — the delegate always answers
  // eventually. Draw keys are unchanged from the original hand-rolled
  // loop, so the token billing is byte-identical (llm_test pins it).
  util::RetryPolicy policy;
  policy.max_retries = options_.max_retries;
  util::RetryResult r = util::RunWithRetry(
      policy, options_.name + ":" + key, [&](int attempt) {
        if (attempt >= options_.max_retries ||
            !flake.Decide("retry/" + std::to_string(attempt) + ":" + key,
                          options_.failure_rate)) {
          return util::Status::Ok();
        }
        QueryRecord retry;
        retry.stage = "retry/" + stage;  // Keeps per-stage cost attribution.
        retry.target = target;
        // The prompt is re-sent verbatim; the dropped answer is one
        // token of rate-limit error text.
        retry.input_tokens = input_tokens;
        retry.output_tokens = 1;
        meter_->Record(std::move(retry));
        return util::Status::Error("flaky: simulated rate-limit drop");
      });
  retries_injected_ += static_cast<size_t>(r.retries);
}

IdentifierAnalysis
FlakyBackend::AnalyzeIdentifiers(const std::string& fn_name,
                                 const std::string& usage,
                                 const std::string& module, int depth)
{
  IdentifierAnalysis result =
      delegate_->AnalyzeIdentifiers(fn_name, usage, module, depth);
  BillRetries("identifier", module + ":" + fn_name);
  return result;
}

ArgTypeAnalysis
FlakyBackend::AnalyzeArgumentType(const std::string& fn_name,
                                  const std::string& module)
{
  ArgTypeAnalysis result = delegate_->AnalyzeArgumentType(fn_name, module);
  BillRetries("type", module + ":" + fn_name);
  return result;
}

StructRecovery
FlakyBackend::RecoverStruct(const std::string& struct_name,
                            const std::string& module,
                            const std::vector<FieldConstraint>& constraints,
                            const std::vector<std::string>& out_fields)
{
  StructRecovery result =
      delegate_->RecoverStruct(struct_name, module, constraints, out_fields);
  BillRetries("type", module + ":" + struct_name);
  return result;
}

DependencyAnalysis
FlakyBackend::AnalyzeDependencies(const std::string& fn_name,
                                  const std::string& module)
{
  DependencyAnalysis result = delegate_->AnalyzeDependencies(fn_name, module);
  BillRetries("dependency", module + ":" + fn_name);
  return result;
}

std::string
FlakyBackend::InferDeviceNode(const extractor::DriverHandler& handler,
                              const std::string& module)
{
  std::string node = delegate_->InferDeviceNode(handler, module);
  BillRetries("identifier", module + ":device-node");
  return node;
}

SocketCreateAnalysis
FlakyBackend::AnalyzeSocketCreate(const std::string& fn_name,
                                  const std::string& module)
{
  SocketCreateAnalysis result =
      delegate_->AnalyzeSocketCreate(fn_name, module);
  BillRetries("identifier", module + ":" + fn_name);
  return result;
}

}  // namespace kernelgpt::llm
