/// \file
/// Capability profiles of the simulated analysis LLM.
///
/// The paper's core claims rest on *what* a model can infer from kernel
/// source (nodename registration, _IOC_NR command modification, delegated
/// dispatch, table lookups, len-of semantics, comments) and on its failure
/// modes (§5.1.3: ~0.9% wrong identifiers on modified commands, a few
/// wrong types, occasional syntactically invalid output that the repair
/// loop fixes). A ModelProfile parameterizes exactly those axes; all
/// stochastic decisions are derived from stable hashes so every run is
/// reproducible.

#ifndef KERNELGPT_LLM_PROFILE_H_
#define KERNELGPT_LLM_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kernelgpt::llm {

/// Capability and error model of one LLM.
struct ModelProfile {
  std::string name;

  // -- Comprehension capabilities -----------------------------------------
  bool understands_ioc_nr = true;        ///< cmd = _IOC_NR(command) idiom.
  bool understands_nodename = true;      ///< miscdevice .nodename wins.
  bool understands_device_create = true; ///< printf-format node names.
  bool understands_table_lookup = true;  ///< static ioctl dispatch tables.
  bool understands_len_semantics = true; ///< count/len fields -> len[].
  bool reads_comments = true;            ///< textual hints (paper's L-3).
  bool analyzes_sockets = true;
  bool follows_dependencies = true;      ///< anon_inode_getfd resources.
  /// Maximum delegation depth the model reliably follows within the
  /// iterative analysis (per-hop loss applies beyond it).
  int max_delegation_depth = 6;

  // -- Error rates (deterministic, hash-keyed) ------------------------------
  /// Chance of silently omitting one discovered command.
  double miss_command_rate = 0.0;
  /// Chance of using the modified (raw nr) value for a command behind a
  /// _IOC_NR switch even when the idiom is understood (§5.1.3's 0.9%).
  double wrong_identifier_rate = 0.0;
  /// Chance of mistyping one struct field (e.g. 32 vs 64 bit).
  double wrong_type_rate = 0.0;
  /// Chance that a generated declaration carries a syntax-level flaw the
  /// validator catches (drives the repair loop and Table 1's Fixed column).
  double invalid_decl_rate = 0.0;
  /// Chance that a handler's flaws are within the model's repair reach
  /// (per-handler; the complement is the paper's tail of handlers that
  /// never validate).
  double repair_success_rate = 0.9;

  // -- Budget ----------------------------------------------------------------
  /// Context window in (approximate) tokens; prompts are truncated to it.
  size_t context_tokens = 128000;

  /// Deterministic Bernoulli draw: true with probability `rate` for this
  /// (profile, key) pair. Stable across runs and platforms.
  bool Decide(const std::string& key, double rate) const;
};

/// Profiles live in the BackendRegistry as registered data (see
/// llm/registry.h); the accessors below read the default registry and are
/// kept for the many call sites that predate it.

/// GPT-4: the paper's default. Strong comprehension, rare slips.
ModelProfile Gpt4();

/// GPT-4o: comparable to GPT-4 (§5.2.3's LLM-choice ablation).
ModelProfile Gpt4o();

/// GPT-3.5: much weaker — misses commands, shallow delegation, no len
/// semantics, frequent invalid output.
ModelProfile Gpt35();

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_PROFILE_H_
