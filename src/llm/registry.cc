#include "llm/registry.h"

#include <utility>

#include "llm/engine.h"
#include "llm/flaky_backend.h"

namespace kernelgpt::llm {

namespace {

// -- Built-in profile data ----------------------------------------------------
// The historical Gpt4/Gpt4o/Gpt35 values are load-bearing: every
// deterministic error draw is keyed on the profile name and compared
// against these rates, so changing a number here changes which concrete
// handlers fail — the parity regression tests in service_test pin them.

ModelProfile
Gpt4Profile()
{
  ModelProfile p;
  p.name = "gpt-4";
  p.max_delegation_depth = 6;
  p.miss_command_rate = 0.015;
  p.wrong_identifier_rate = 0.02;  // Only applies to modified identifiers.
  p.wrong_type_rate = 0.012;
  p.invalid_decl_rate = 0.055;
  p.repair_success_rate = 0.86;
  p.context_tokens = 128000;
  return p;
}

ModelProfile
Gpt4oProfile()
{
  ModelProfile p = Gpt4Profile();
  p.name = "gpt-4o";
  // Near-identical to GPT-4 (the paper found them comparable); its
  // deterministic draws still differ because the name feeds the hash.
  p.miss_command_rate = 0.012;
  p.invalid_decl_rate = 0.05;
  p.repair_success_rate = 0.9;
  return p;
}

ModelProfile
Gpt35Profile()
{
  ModelProfile p;
  p.name = "gpt-3.5";
  p.understands_ioc_nr = false;
  p.understands_table_lookup = false;
  p.understands_len_semantics = false;
  p.understands_device_create = true;
  p.understands_nodename = true;
  p.max_delegation_depth = 2;
  p.miss_command_rate = 0.35;
  p.wrong_identifier_rate = 0.25;
  p.wrong_type_rate = 0.08;
  p.invalid_decl_rate = 0.18;
  p.repair_success_rate = 0.5;
  p.context_tokens = 16000;
  return p;
}

/// Fast/cheap tier: between gpt-3.5 and gpt-4 — keeps the idiom
/// comprehension but slips more often and follows less indirection.
ModelProfile
Gpt4MiniProfile()
{
  ModelProfile p = Gpt4Profile();
  p.name = "gpt-4-mini";
  p.max_delegation_depth = 4;
  p.miss_command_rate = 0.06;
  p.wrong_identifier_rate = 0.05;
  p.wrong_type_rate = 0.03;
  p.invalid_decl_rate = 0.09;
  p.repair_success_rate = 0.75;
  p.context_tokens = 64000;
  return p;
}

/// Long-context tier: gpt-4 comprehension with a 1M-token window, so the
/// all-in-one ablation fits whole handler chains into one prompt.
ModelProfile
Gpt4LongProfile()
{
  ModelProfile p = Gpt4Profile();
  p.name = "gpt-4-long";
  p.context_tokens = 1000000;
  return p;
}

}  // namespace

void
BackendRegistry::Register(BackendInfo info, Factory factory)
{
  for (Entry& entry : entries_) {
    if (entry.info.name == info.name) {
      entry.info = std::move(info);
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({std::move(info), std::move(factory)});
}

const BackendRegistry::Entry*
BackendRegistry::FindEntry(const std::string& name) const
{
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

const BackendInfo*
BackendRegistry::Find(const std::string& name) const
{
  const Entry* entry = FindEntry(name);
  return entry ? &entry->info : nullptr;
}

std::unique_ptr<Backend>
BackendRegistry::Create(const std::string& name,
                        const ksrc::DefinitionIndex* index,
                        TokenMeter* meter) const
{
  const Entry* entry = FindEntry(name);
  if (!entry) return nullptr;
  if (entry->factory) return entry->factory(entry->info, index, meter);
  return std::make_unique<SimulatedBackend>(index, entry->info.profile,
                                            meter);
}

std::vector<std::string>
BackendRegistry::Names() const
{
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.info.name);
  return names;
}

double
BackendRegistry::CostUsd(const std::string& name,
                         const TokenMeter& meter) const
{
  const BackendInfo* info = Find(name);
  BackendPricing pricing = info ? info->pricing : BackendPricing{};
  return pricing.Cost(meter.total_input_tokens(),
                      meter.total_output_tokens());
}

BackendRegistry
BackendRegistry::BuiltIns()
{
  BackendRegistry registry;
  registry.Register({"gpt-4", Gpt4Profile(), {10.0, 30.0},
                     "the paper's default: strong comprehension, rare slips"});
  registry.Register({"gpt-4o", Gpt4oProfile(), {2.5, 10.0},
                     "comparable quality to gpt-4 at a fraction of the price"});
  registry.Register({"gpt-3.5", Gpt35Profile(), {0.5, 1.5},
                     "weak tier: misses commands, shallow delegation"});
  registry.Register({"gpt-4-mini", Gpt4MiniProfile(), {0.6, 2.4},
                     "fast/cheap tier: gpt-4 idioms, more slips"});
  registry.Register({"gpt-4-long", Gpt4LongProfile(), {12.0, 36.0},
                     "long-context tier: 1M-token window"});
  // Rate-limited wrapper: analyses are byte-identical to gpt-4 (the
  // delegate keeps the "gpt-4" profile name, so every draw matches); the
  // wrapper injects deterministic metered retries on top.
  registry.Register(
      {"gpt-4-flaky", Gpt4Profile(), {10.0, 30.0},
       "gpt-4 behind a rate-limited endpoint: deterministic retry cost"},
      [](const BackendInfo& info, const ksrc::DefinitionIndex* index,
         TokenMeter* meter) -> std::unique_ptr<Backend> {
        FlakyOptions flaky;
        flaky.name = info.name;
        return std::make_unique<FlakyBackend>(
            std::make_unique<SimulatedBackend>(index, info.profile, meter),
            flaky, meter);
      });
  return registry;
}

const BackendRegistry&
BackendRegistry::Default()
{
  static const BackendRegistry registry = BuiltIns();
  return registry;
}

// -- Legacy profile accessors -------------------------------------------------

ModelProfile
Gpt4()
{
  return BackendRegistry::Default().Find("gpt-4")->profile;
}

ModelProfile
Gpt4o()
{
  return BackendRegistry::Default().Find("gpt-4o")->profile;
}

ModelProfile
Gpt35()
{
  return BackendRegistry::Default().Find("gpt-3.5")->profile;
}

}  // namespace kernelgpt::llm
