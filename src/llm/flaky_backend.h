/// \file
/// A rate-limited/flaky wrapper backend: delegates every query to an
/// inner backend but deterministically injects failed attempts (HTTP-429
/// analogs) that are retried and re-billed. The final analysis is always
/// the delegate's — flakiness changes cost, never quality — which models
/// running the pipeline against an overloaded API endpoint and lets the
/// backend-matrix report show a cost column inflated by retries.

#ifndef KERNELGPT_LLM_FLAKY_BACKEND_H_
#define KERNELGPT_LLM_FLAKY_BACKEND_H_

#include <memory>
#include <string>

#include "llm/backend.h"
#include "llm/token_meter.h"

namespace kernelgpt::llm {

/// Retry behaviour of the wrapper. Draws are keyed on (wrapper name,
/// query key, attempt), so the injected failures are stable across runs,
/// platforms, and thread counts.
struct FlakyOptions {
  /// Wrapper identity used to key the deterministic failure draws (must
  /// differ from the delegate's profile name or the draws correlate with
  /// the delegate's own error draws).
  std::string name = "flaky";
  /// Per-attempt chance that the request is dropped before an answer.
  double failure_rate = 0.3;
  /// Attempts beyond the first (a query is issued at most 1 + max_retries
  /// times; after that the last answer is used — the delegate always
  /// answers the final attempt).
  int max_retries = 3;
};

/// Wraps a backend, injecting deterministic metered retries.
class FlakyBackend : public Backend {
 public:
  FlakyBackend(std::unique_ptr<Backend> delegate, FlakyOptions options,
               TokenMeter* meter);

  const ModelProfile& profile() const override;

  IdentifierAnalysis AnalyzeIdentifiers(const std::string& fn_name,
                                        const std::string& usage,
                                        const std::string& module,
                                        int depth) override;

  ArgTypeAnalysis AnalyzeArgumentType(const std::string& fn_name,
                                      const std::string& module) override;

  StructRecovery RecoverStruct(
      const std::string& struct_name, const std::string& module,
      const std::vector<FieldConstraint>& constraints,
      const std::vector<std::string>& out_fields) override;

  DependencyAnalysis AnalyzeDependencies(const std::string& fn_name,
                                         const std::string& module) override;

  std::string InferDeviceNode(const extractor::DriverHandler& handler,
                              const std::string& module) override;

  SocketCreateAnalysis AnalyzeSocketCreate(const std::string& fn_name,
                                           const std::string& module) override;

  /// Failed attempts injected so far (for tests/reports).
  size_t retries_injected() const { return retries_injected_; }

 private:
  /// Charges the deterministic number of failed attempts for `key`. The
  /// delegate has already metered the successful exchange, so each retry
  /// re-bills that exchange's input tokens (the prompt is re-sent; the
  /// truncated answer costs ~nothing).
  void BillRetries(const std::string& stage, const std::string& key);

  std::unique_ptr<Backend> delegate_;
  FlakyOptions options_;
  TokenMeter* meter_;
  size_t retries_injected_ = 0;
};

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_FLAKY_BACKEND_H_
