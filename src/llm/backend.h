/// \file
/// The analysis-LLM backend interface. Each method corresponds to one
/// query of the paper's pipeline (Figure 6): identifier deduction,
/// argument-type analysis, struct recovery, dependency analysis, device
/// node inference, and socket-create analysis. Implementations render and
/// meter realistic prompts, answer at the fidelity their capability
/// profile allows, and report "UNKNOWN" items for the iterative loop.
///
/// The generation stack (spec_gen::KernelGpt, spec_gen::SpecGenService)
/// is written purely against this interface; concrete backends are
/// obtained through the BackendRegistry, which is how the §5.2.3
/// LLM-choice ablation fans one handler set across many models.

#ifndef KERNELGPT_LLM_BACKEND_H_
#define KERNELGPT_LLM_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extractor/handler_finder.h"
#include "llm/profile.h"
#include "syzlang/ast.h"

namespace kernelgpt::llm {

/// A missing function/type the model asks for (Algorithm 1's `unknown`).
struct Unknown {
  enum class Kind { kFunction, kType };
  Kind kind = Kind::kFunction;
  std::string identifier;
  std::string usage;  ///< Invocation/usage context presented back next step.
};

/// One command discovered during identifier deduction.
struct CommandFinding {
  std::string macro;         ///< Constant to use as the cmd/optname value.
  std::string sub_function;  ///< Function implementing the command.
  bool from_modified_switch = false;  ///< Behind a _IOC_NR-style dispatch.
  bool identifier_mangled = false;    ///< Model emitted the wrong constant.
};

/// Result of one identifier-deduction query.
struct IdentifierAnalysis {
  std::vector<CommandFinding> commands;
  std::vector<Unknown> unknowns;
  /// Sockets: SOL_* guard observed (`if (level != SOL_RDS) ...`).
  std::string guard_level_macro;
};

/// A semantic constraint recovered from validation code in a handler.
struct FieldConstraint {
  enum class Kind { kRange, kEquals, kNonZero, kUpperBound };
  std::string field;
  Kind kind = Kind::kRange;
  int64_t a = 0;  ///< Range low / equals value.
  int64_t b = 0;  ///< Range high / upper bound.
};

/// Result of analyzing one per-command helper for its argument type.
struct ArgTypeAnalysis {
  std::string arg_struct;  ///< "" when the command takes no pointer arg.
  syzlang::Dir dir = syzlang::Dir::kInOut;
  std::vector<FieldConstraint> constraints;
  std::vector<std::string> out_fields;  ///< Fields the kernel writes.
};

/// A flag set the model synthesized from a macro group.
struct FlagSetGuess {
  std::string set_name;
  std::vector<std::string> member_macros;
};

/// Result of recovering one struct definition.
struct StructRecovery {
  syzlang::StructDef def;
  std::vector<Unknown> unknowns;  ///< Nested struct types to fetch next.
  std::vector<FlagSetGuess> flag_sets;
};

/// Result of dependency analysis on one helper.
struct DependencyAnalysis {
  struct CreatedResource {
    std::string label;     ///< anon_inode_getfd name, e.g. "kvm-vm".
    std::string fops_var;  ///< Handler table the new fd is bound to.
  };
  std::vector<CreatedResource> created;
};

/// Result of analyzing a socket family's create() function.
struct SocketCreateAnalysis {
  std::string type_macro;      ///< Required SOCK_* macro ("" = any).
  uint64_t protocol = 0;       ///< Required protocol (0 = any).
  bool protocol_checked = false;
};

/// Abstract analysis-model backend: the six Figure-6 query methods.
///
/// Implementations must be deterministic functions of (kernel index,
/// capability profile, query arguments) — the whole experiment harness
/// and every determinism gate rely on byte-identical replays.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Capability/error profile this backend answers with. The profile's
  /// name keys every deterministic error draw, so two backends with the
  /// same profile produce identical analyses.
  virtual const ModelProfile& profile() const = 0;

  /// Stage 1 (one iteration): deduce identifier values from one function.
  /// `depth` is the current delegation depth (capability-bounded).
  virtual IdentifierAnalysis AnalyzeIdentifiers(const std::string& fn_name,
                                                const std::string& usage,
                                                const std::string& module,
                                                int depth) = 0;

  /// Stage 2a: infer the argument struct, direction, validation
  /// constraints, and output fields of one per-command helper.
  virtual ArgTypeAnalysis AnalyzeArgumentType(const std::string& fn_name,
                                              const std::string& module) = 0;

  /// Stage 2b: recover one struct definition as syzlang, enriched with the
  /// constraints/out-fields learned in 2a and (capability permitting)
  /// len-of and flags semantics.
  virtual StructRecovery RecoverStruct(
      const std::string& struct_name, const std::string& module,
      const std::vector<FieldConstraint>& constraints,
      const std::vector<std::string>& out_fields) = 0;

  /// Stage 3: find fd-creating calls (anon_inode_getfd) in a helper.
  virtual DependencyAnalysis AnalyzeDependencies(const std::string& fn_name,
                                                 const std::string& module) = 0;

  /// Infers the device node path from registration usage.
  virtual std::string InferDeviceNode(const extractor::DriverHandler& handler,
                                      const std::string& module) = 0;

  /// Analyzes a socket create() function for type/protocol gating.
  virtual SocketCreateAnalysis AnalyzeSocketCreate(
      const std::string& fn_name, const std::string& module) = 0;
};

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_BACKEND_H_
