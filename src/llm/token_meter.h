/// \file
/// Token and cost accounting for the simulated LLM — reproduces the
/// paper's §5.1.1 cost analysis (input/output tokens, per-prompt averages,
/// dollar cost).

#ifndef KERNELGPT_LLM_TOKEN_METER_H_
#define KERNELGPT_LLM_TOKEN_METER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace kernelgpt::llm {

/// Per-million-token prices used for the $-estimate columns. Each
/// BackendRegistry entry carries one; defined here, next to the token
/// accounting, so every cost report shares a single formula.
struct BackendPricing {
  double usd_per_m_input = 10.0;
  double usd_per_m_output = 30.0;

  /// Dollar cost of a token total under this pricing.
  double Cost(size_t input_tokens, size_t output_tokens) const {
    return static_cast<double>(input_tokens) / 1e6 * usd_per_m_input +
           static_cast<double>(output_tokens) / 1e6 * usd_per_m_output;
  }
};

/// Record of one prompt/response exchange.
struct QueryRecord {
  std::string stage;    ///< "identifier" / "type" / "dependency" / "repair".
  std::string target;   ///< Module or function being analyzed.
  std::string prompt;   ///< Full rendered prompt text.
  std::string response; ///< Rendered model answer.
  size_t input_tokens = 0;
  size_t output_tokens = 0;
};

/// Accumulates exchanges; thread-unsafe by design (single-threaded runs).
class TokenMeter {
 public:
  /// Registers one exchange; token counts are estimated from the text.
  void Record(QueryRecord record);

  size_t query_count() const { return records_.size(); }
  size_t total_input_tokens() const { return input_tokens_; }
  size_t total_output_tokens() const { return output_tokens_; }

  double AvgInputTokens() const;
  double AvgOutputTokens() const;

  /// Dollar cost under the given per-million-token prices (defaults are
  /// GPT-4-turbo era prices: $10/M input, $30/M output).
  double CostUsd(double usd_per_m_input = 10.0,
                 double usd_per_m_output = 30.0) const;

  const std::vector<QueryRecord>& records() const { return records_; }

  /// Keep only counters, dropping stored prompt text (for large runs).
  void SetKeepText(bool keep) { keep_text_ = keep; }

 private:
  std::vector<QueryRecord> records_;
  size_t input_tokens_ = 0;
  size_t output_tokens_ = 0;
  bool keep_text_ = true;
};

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_TOKEN_METER_H_
