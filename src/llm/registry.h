/// \file
/// Backend registry: name → (capability profile, pricing, factory).
///
/// Profiles are registered data, not free functions: every model the
/// §5.2.3 ablation or the backend-matrix table can run is one registry
/// entry, and `registry.Create("gpt-4", ...)` is the only way the
/// generation stack obtains a concrete llm::Backend. Per-backend pricing
/// lives here too, so cost reports are a pure function of a TokenMeter
/// and a registry entry.

#ifndef KERNELGPT_LLM_REGISTRY_H_
#define KERNELGPT_LLM_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ksrc/definition_index.h"
#include "llm/backend.h"
#include "llm/token_meter.h"

namespace kernelgpt::llm {

/// One registered backend: identity, capability profile, and pricing
/// (BackendPricing lives in llm/token_meter.h with the token accounting).
/// For wrapper backends (e.g. the flaky tier) `profile.name` may differ
/// from `name`: the profile keys the deterministic analysis draws while
/// `name` keys the registry lookup and the report rows.
struct BackendInfo {
  std::string name;
  ModelProfile profile;
  BackendPricing pricing;
  std::string description;
};

/// Name → factory registry of analysis backends.
class BackendRegistry {
 public:
  /// Builds a backend bound to one kernel index and one meter.
  using Factory = std::function<std::unique_ptr<Backend>(
      const BackendInfo& info, const ksrc::DefinitionIndex* index,
      TokenMeter* meter)>;

  /// Registers an entry. With no factory, Create() builds a
  /// SimulatedBackend answering with `info.profile`. Re-registering a
  /// name replaces the previous entry (keeps its position).
  void Register(BackendInfo info, Factory factory = {});

  /// Instantiates the named backend; nullptr for unknown names.
  std::unique_ptr<Backend> Create(const std::string& name,
                                  const ksrc::DefinitionIndex* index,
                                  TokenMeter* meter) const;

  const BackendInfo* Find(const std::string& name) const;

  /// Registered names, in registration order (stable report ordering).
  std::vector<std::string> Names() const;

  /// Dollar cost of `meter`'s totals under the named backend's pricing;
  /// falls back to default pricing for unknown names.
  double CostUsd(const std::string& name, const TokenMeter& meter) const;

  /// A fresh registry preloaded with the built-in model tiers:
  /// "gpt-4" (the paper's default), "gpt-4o", "gpt-3.5", "gpt-4-mini"
  /// (fast/cheap tier), "gpt-4-long" (long-context tier), and
  /// "gpt-4-flaky" (rate-limited wrapper around gpt-4 that injects
  /// deterministic retries). Extend it with Register() in tests.
  static BackendRegistry BuiltIns();

  /// Lazily-built shared instance of BuiltIns().
  static const BackendRegistry& Default();

 private:
  struct Entry {
    BackendInfo info;
    Factory factory;
  };
  const Entry* FindEntry(const std::string& name) const;

  std::vector<Entry> entries_;
};

}  // namespace kernelgpt::llm

#endif  // KERNELGPT_LLM_REGISTRY_H_
