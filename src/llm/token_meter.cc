#include "llm/token_meter.h"

#include "util/strings.h"

namespace kernelgpt::llm {

void
TokenMeter::Record(QueryRecord record)
{
  if (record.input_tokens == 0) {
    record.input_tokens = util::ApproxTokenCount(record.prompt);
  }
  if (record.output_tokens == 0) {
    record.output_tokens = util::ApproxTokenCount(record.response);
  }
  input_tokens_ += record.input_tokens;
  output_tokens_ += record.output_tokens;
  if (!keep_text_) {
    record.prompt.clear();
    record.response.clear();
  }
  records_.push_back(std::move(record));
}

double
TokenMeter::AvgInputTokens() const
{
  if (records_.empty()) return 0.0;
  return static_cast<double>(input_tokens_) /
         static_cast<double>(records_.size());
}

double
TokenMeter::AvgOutputTokens() const
{
  if (records_.empty()) return 0.0;
  return static_cast<double>(output_tokens_) /
         static_cast<double>(records_.size());
}

double
TokenMeter::CostUsd(double usd_per_m_input, double usd_per_m_output) const
{
  // One pricing formula project-wide: BackendPricing::Cost.
  return BackendPricing{usd_per_m_input, usd_per_m_output}.Cost(
      input_tokens_, output_tokens_);
}

}  // namespace kernelgpt::llm
