#!/usr/bin/env bash
# Two-phase profile-guided-optimization driver:
#
#   1. generate: configure a dedicated build tree with
#      -DKERNELGPT_PGO=generate and build the perf_micro bench.
#   2. train: run the hot-path benchmarks (fuzz throughput, coverage
#      merge, snapshot round trips) once as the training workload —
#      short repetitions; the profile needs branch shape, not timing
#      precision.
#   3. use: reconfigure the SAME tree with -DKERNELGPT_PGO=use and
#      rebuild everything against the recorded profiles.
#
# The result is an optimized tree at $PGO_BUILD_DIR; point bench.sh at
# it with BUILD_DIR=$PGO_BUILD_DIR to measure the PGO win:
#
#   scripts/pgo.sh && BUILD_DIR=build-pgo scripts/bench.sh --check BENCH_pr8.json
#
# Env: PGO_BUILD_DIR (default: build-pgo), KERNELGPT_CMAKE_ARGS (extra
# configure args, e.g. a ccache launcher in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

PGO_BUILD_DIR="${PGO_BUILD_DIR:-build-pgo}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TRAIN_FILTER='BM_FuzzThroughput|BM_CoverageMerge|BM_CoverageCountNotIn|BM_CoverageHit|BM_ExecutorDispatch|BM_SnapshotSaveLoad'

echo "== PGO phase 1: instrumented build (${PGO_BUILD_DIR}) =="
# shellcheck disable=SC2086  # word-splitting of the extra args is intended
cmake -B "${PGO_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKERNELGPT_PGO=generate ${KERNELGPT_CMAKE_ARGS:-}
if ! cmake --build "${PGO_BUILD_DIR}" -j"${JOBS}" --target bench_perf_micro 2>/dev/null; then
  echo "google-benchmark unavailable; training on the example campaign instead"
  cmake --build "${PGO_BUILD_DIR}" -j"${JOBS}"
fi

echo "== PGO phase 2: training run =="
if [ -x "${PGO_BUILD_DIR}/bench/bench_perf_micro" ]; then
  "${PGO_BUILD_DIR}/bench/bench_perf_micro" \
    --benchmark_filter="${TRAIN_FILTER}" --benchmark_min_time=0.1
else
  # No bench binary on this host: any example exercises the same
  # generator -> executor -> coverage -> snapshot hot loop.
  find "${PGO_BUILD_DIR}/examples" -maxdepth 1 -type f -perm -u+x \
    | head -n 1 | xargs -r -n 1 sh -c 'exec "$0"' > /dev/null
fi

echo "== PGO phase 3: optimized rebuild from profiles =="
# shellcheck disable=SC2086
cmake -B "${PGO_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKERNELGPT_PGO=use ${KERNELGPT_CMAKE_ARGS:-}
cmake --build "${PGO_BUILD_DIR}" -j"${JOBS}"

echo "PGO OK: optimized tree at ${PGO_BUILD_DIR}"
echo "measure with: BUILD_DIR=${PGO_BUILD_DIR} scripts/bench.sh --check <baseline.json>"
