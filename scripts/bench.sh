#!/usr/bin/env bash
# Perf trajectory harness (PR 2): runs the perf_micro hot-path benchmarks
# and writes BENCH_pr2.json with execs/sec, ns/dispatch, and ns/merge so
# future PRs can compare against a recorded baseline on the same machine.
#
# Usage: scripts/bench.sh [output.json]
# Env:   BUILD_DIR (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_pr2.json}"
BENCH_BIN="${BUILD_DIR}/bench/bench_perf_micro"
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ ! -x "${BENCH_BIN}" ]; then
  echo "== building ${BENCH_BIN} =="
  # Explicit optimized build type; never benchmark -O0 code. (The
  # "library_build_type: debug" google-benchmark prints refers to the
  # system libbenchmark, not this project.)
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"${JOBS}" --target bench_perf_micro
fi

BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "${BUILD_DIR}/CMakeCache.txt" | cut -d= -f2 || true)"
case "${BUILD_TYPE}" in
  Release|RelWithDebInfo) ;;
  *)
    echo "refusing to record a perf trajectory from a '${BUILD_TYPE:-unset}' build;"
    echo "reconfigure ${BUILD_DIR} with -DCMAKE_BUILD_TYPE=RelWithDebInfo" >&2
    exit 1
    ;;
esac

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT

echo "== running hot-path benchmarks =="
# BM_OrchestratorThroughput is intentionally excluded: its items/sec
# accounting is not comparable across worker counts on shared runners
# (and is meaningless on 1-CPU containers), so it would poison the
# trajectory file.
"${BENCH_BIN}" \
  --benchmark_filter='BM_FuzzThroughput|BM_ExecutorDispatch|BM_CoverageMerge' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${RAW}"

python3 - "${RAW}" "${OUT}" <<'PYEOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

means = {
    b["run_name"]: b
    for b in raw["benchmarks"]
    if b.get("aggregate_name") == "mean"
}

def items_per_sec(name):
    b = means.get(name)
    return round(b["items_per_second"], 1) if b else None

def ns_per_item(name):
    b = means.get(name)
    return round(1e9 / b["items_per_second"], 2) if b and b["items_per_second"] else None

result = {
    "schema": "kernelgpt-bench/1",
    "pr": 2,
    "source": "scripts/bench.sh (bench/perf_micro.cc, google-benchmark mean of 3 reps)",
    "context": raw.get("context", {}),
    "fuzz_throughput": {
        "execs_per_sec_unbatched": items_per_sec("BM_FuzzThroughput/2000/1"),
        "execs_per_sec_batch32": items_per_sec("BM_FuzzThroughput/2000/32"),
    },
    # Full replay cost per dispatched syscall (opcode switch + kernel +
    # driver-model handler + coverage), not the switch in isolation.
    "executor_dispatch": {
        "calls_per_sec": items_per_sec("BM_ExecutorDispatch"),
        "ns_per_replayed_call": ns_per_item("BM_ExecutorDispatch"),
    },
    "coverage_merge": {
        "ns_per_merge_256_blocks": ns_per_item("BM_CoverageMerge/256"),
        "ns_per_merge_4096_blocks": ns_per_item("BM_CoverageMerge/4096"),
    },
    # Pre-PR2 numbers measured on the same machine before the hot-path
    # work (seed executor: string-chain dispatch, set-based coverage,
    # deep-copied buffers, unbatched): the 2x acceptance reference.
    "baseline_pre_pr2": {
        "fuzz_throughput_execs_per_sec": 125959.0,
        "note": "BM_FuzzThroughput/2000 at commit 1f701f0",
    },
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("wrote %s" % out_path)
PYEOF

python3 -m json.tool "${OUT}" > /dev/null
echo "bench OK: ${OUT}"
