#!/usr/bin/env bash
# Perf trajectory harness: runs the perf_micro hot-path benchmarks and
# either records a BENCH_prN.json trajectory file or gates against a
# previously recorded baseline.
#
# Record: scripts/bench.sh [output.json]
#   Default output is the newest BENCH_pr<N>.json in the repo plus one
#   (BENCH_pr8.json present -> records BENCH_pr9.json).
# Gate:   scripts/bench.sh --check baseline.json
#   Re-measures fuzz throughput (higher is better), the coverage merge
#   path, and the snapshot round trip (both lower is better) and fails
#   (exit 1) when any metric regresses more than BENCH_TOLERANCE_PCT
#   percent (default 25) past the baseline. Override the tolerance for
#   noisy shared runners, e.g. BENCH_TOLERANCE_PCT=40 in CI.
#
# Env: BUILD_DIR (default: build), BENCH_TOLERANCE_PCT (default: 25)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_BIN="${BUILD_DIR}/bench/bench_perf_micro"
JOBS="$(nproc 2>/dev/null || echo 2)"

MODE="record"
OUT=""
BASELINE=""
if [ "${1:-}" = "--check" ]; then
  MODE="check"
  BASELINE="${2:?usage: bench.sh --check baseline.json}"
  [ -f "${BASELINE}" ] || { echo "no such baseline: ${BASELINE}" >&2; exit 2; }
elif [ -n "${1:-}" ]; then
  OUT="$1"
else
  # Default to the next PR slot after the newest recorded trajectory.
  LAST="$(ls BENCH_pr*.json 2>/dev/null \
          | sed -E 's/^BENCH_pr([0-9]+)\.json$/\1/' | sort -n | tail -1)"
  OUT="BENCH_pr$(( ${LAST:-0} + 1 )).json"
fi

if [ ! -x "${BENCH_BIN}" ]; then
  echo "== building ${BENCH_BIN} =="
  # Explicit optimized build type; never benchmark -O0 code. (The
  # "library_build_type: debug" google-benchmark prints refers to the
  # system libbenchmark, not this project.)
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"${JOBS}" --target bench_perf_micro
fi

BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "${BUILD_DIR}/CMakeCache.txt" | cut -d= -f2 || true)"
case "${BUILD_TYPE}" in
  Release|RelWithDebInfo) ;;
  *)
    echo "refusing to measure a perf trajectory from a '${BUILD_TYPE:-unset}' build;"
    echo "reconfigure ${BUILD_DIR} with -DCMAKE_BUILD_TYPE=RelWithDebInfo" >&2
    exit 1
    ;;
esac

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT

if [ "${MODE}" = "check" ]; then
  echo "== perf gate: throughput + coverage merge + snapshot vs ${BASELINE} =="
  "${BENCH_BIN}" \
    --benchmark_filter='BM_FuzzThroughput|BM_CoverageMerge|BM_SnapshotSaveLoad' \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "${RAW}"

  python3 - "${RAW}" "${BASELINE}" <<'PYEOF'
import json
import os
import sys

raw_path, baseline_path = sys.argv[1], sys.argv[2]
tolerance_pct = float(os.environ.get("BENCH_TOLERANCE_PCT", "25"))

with open(raw_path) as f:
    raw = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

means = {
    b["run_name"]: b["items_per_second"]
    for b in raw["benchmarks"]
    if b.get("aggregate_name") == "mean"
}

def ns_of(run_name):
    ips = means.get(run_name)
    return 1e9 / ips if ips else None

# Snapshot: the headline metric is the binary codec
# (BM_SnapshotSaveLoad/1); fall back to the pre-PR9 unparameterized run
# name so old build trees still gate.
snapshot_ns = ns_of("BM_SnapshotSaveLoad/1") or ns_of("BM_SnapshotSaveLoad")

# (label, measured value, baseline value, higher_is_better)
checks = [
    ("execs/sec (batch 1)", means.get("BM_FuzzThroughput/2000/1"),
     baseline["fuzz_throughput"].get("execs_per_sec_unbatched"), True),
    ("execs/sec (batch 32)", means.get("BM_FuzzThroughput/2000/32"),
     baseline["fuzz_throughput"].get("execs_per_sec_batch32"), True),
    ("merge ns (256 blocks)", ns_of("BM_CoverageMerge/256"),
     baseline.get("coverage_merge", {}).get("ns_per_merge_256_blocks"),
     False),
    ("merge ns (4096 blocks)", ns_of("BM_CoverageMerge/4096"),
     baseline.get("coverage_merge", {}).get("ns_per_merge_4096_blocks"),
     False),
    ("snapshot us/program",
     snapshot_ns / 1e3 if snapshot_ns else None,
     baseline.get("snapshot", {}).get("us_per_corpus_program"), False),
]

failed = False
compared = 0
for label, measured, recorded, higher_is_better in checks:
    if recorded is None or measured is None:
        print("SKIP %-22s (missing in %s)" %
              (label, "baseline" if recorded is None else "measurement"))
        continue
    compared += 1
    if higher_is_better:
        limit = recorded * (1.0 - tolerance_pct / 100.0)
        ok = measured >= limit
    else:
        limit = recorded * (1.0 + tolerance_pct / 100.0)
        ok = measured <= limit
    delta_pct = 100.0 * (measured - recorded) / recorded
    if not ok:
        failed = True
    print("%s %-22s measured %12.1f  baseline %12.1f  (%+.1f%%, limit %s%g%%)" %
          ("OK  " if ok else "FAIL", label, measured, recorded, delta_pct,
           "-" if higher_is_better else "+", tolerance_pct))

if failed:
    print("perf gate FAILED: a hot-path metric regressed more than "
          "%g%% past %s" % (tolerance_pct, baseline_path))
    sys.exit(1)
if compared == 0:
    # A gate that measured nothing must not pass: renamed baseline keys
    # or a benchmark filter drift would otherwise disable it silently.
    print("perf gate FAILED: no comparable metrics between the "
          "measurement and %s" % baseline_path)
    sys.exit(1)
print("perf gate OK (tolerance %g%%)" % tolerance_pct)
PYEOF
  exit 0
fi

echo "== running hot-path benchmarks =="
# BM_OrchestratorThroughput is intentionally excluded: its items/sec
# accounting is not comparable across worker counts on shared runners
# (and is meaningless on 1-CPU containers), so it would poison the
# trajectory file.
"${BENCH_BIN}" \
  --benchmark_filter='BM_FuzzThroughput|BM_ExecutorDispatch|BM_CoverageMerge|BM_CoverageCountNotIn|BM_CoverageHit|BM_Distill|BM_KernelOpenClose|BM_SnapshotSaveLoad|BM_SnapshotAppend|BM_FaultPointDisarmed|BM_FleetRoundOverhead|BM_DiffRunnerOverhead' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${RAW}"

python3 - "${RAW}" "${OUT}" <<'PYEOF'
import json
import re
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

pr_match = re.search(r"pr(\d+)", out_path)
pr = int(pr_match.group(1)) if pr_match else None

means = {
    b["run_name"]: b
    for b in raw["benchmarks"]
    if b.get("aggregate_name") == "mean"
}

def items_per_sec(name):
    b = means.get(name)
    return round(b["items_per_second"], 1) if b else None

def ns_per_item(name):
    b = means.get(name)
    return round(1e9 / b["items_per_second"], 2) if b and b["items_per_second"] else None

result = {
    "schema": "kernelgpt-bench/1",
    "pr": pr,
    "source": "scripts/bench.sh (bench/perf_micro.cc, google-benchmark mean of 3 reps)",
    "context": raw.get("context", {}),
    "fuzz_throughput": {
        "execs_per_sec_unbatched": items_per_sec("BM_FuzzThroughput/2000/1"),
        "execs_per_sec_batch32": items_per_sec("BM_FuzzThroughput/2000/32"),
    },
    # Full replay cost per dispatched syscall (opcode switch + kernel +
    # driver-model handler + coverage), not the switch in isolation.
    "executor_dispatch": {
        "calls_per_sec": items_per_sec("BM_ExecutorDispatch"),
        "ns_per_replayed_call": ns_per_item("BM_ExecutorDispatch"),
    },
    # Coverage hot path (PR 9: SIMD merge-join over physically key-sorted
    # pages, AVX2 when the host has it). CountNotIn is the distiller's
    # novelty probe; Hit is the per-executed-block steady-state cost.
    "coverage_merge": {
        "ns_per_merge_256_blocks": ns_per_item("BM_CoverageMerge/256"),
        "ns_per_merge_4096_blocks": ns_per_item("BM_CoverageMerge/4096"),
        "ns_per_count_not_in_256_blocks": ns_per_item("BM_CoverageCountNotIn/256"),
        "ns_per_count_not_in_4096_blocks": ns_per_item("BM_CoverageCountNotIn/4096"),
        "ns_per_hit": ns_per_item("BM_CoverageHit"),
    },
    # vkernel open path (PR 4): one program's open/close round trip of a
    # model device, with the handler pool serving steady-state opens.
    "kernel_open_close": {
        "opens_per_sec": items_per_sec("BM_KernelOpenClose"),
        "ns_per_open_close": ns_per_item("BM_KernelOpenClose"),
    },
    # Session persistence (PR 5): one in-memory suite-snapshot round trip
    # (serialize + parse of coverage, crashes, corpus, reproducers, trend
    # records), per persisted corpus program. Since PR 9 the headline is
    # the KGPB binary codec (arg 1); the textual codec (arg 0) is kept
    # alongside as the _text keys.
    "snapshot": {
        "corpus_programs_per_sec": items_per_sec("BM_SnapshotSaveLoad/1"),
        "us_per_corpus_program": (
            round(ns_per_item("BM_SnapshotSaveLoad/1") / 1000.0, 2)
            if ns_per_item("BM_SnapshotSaveLoad/1") else None
        ),
        "corpus_programs_per_sec_text": items_per_sec("BM_SnapshotSaveLoad/0"),
        "us_per_corpus_program_text": (
            round(ns_per_item("BM_SnapshotSaveLoad/0") / 1000.0, 2)
            if ns_per_item("BM_SnapshotSaveLoad/0") else None
        ),
    },
    # Incremental journal append (PR 6): serializing + framing one
    # steady-state round delta — the record an incremental Save appends.
    # Flat across corpus sizes by design (the record is O(delta)).
    "snapshot_append": {
        "appends_per_sec_corpus64": items_per_sec("BM_SnapshotAppend/64"),
        "appends_per_sec_corpus1024": items_per_sec("BM_SnapshotAppend/1024"),
        "us_per_append_corpus64": (
            round(ns_per_item("BM_SnapshotAppend/64") / 1000.0, 2)
            if ns_per_item("BM_SnapshotAppend/64") else None
        ),
        "us_per_append_corpus1024": (
            round(ns_per_item("BM_SnapshotAppend/1024") / 1000.0, 2)
            if ns_per_item("BM_SnapshotAppend/1024") else None
        ),
    },
    # Fault-injection substrate (PR 7): cost of one disarmed
    # KERNELGPT_FAULT_POINT (one relaxed atomic load + predicted branch)
    # and the fleet supervisor's per-round overhead versus a bare
    # Session round. Both must stay ~free: the disarmed probe at
    # sub-nanosecond scale, the fleet/bare ratio at ~1.0.
    "fault_injection": {
        "disarmed_fault_point_ns": ns_per_item("BM_FaultPointDisarmed"),
        "session_round_execs_per_sec": items_per_sec("BM_FleetRoundOverhead/0"),
        "fleet_round_execs_per_sec": items_per_sec("BM_FleetRoundOverhead/1"),
        "fleet_over_session_ratio": (
            round(items_per_sec("BM_FleetRoundOverhead/0") /
                  items_per_sec("BM_FleetRoundOverhead/1"), 3)
            if items_per_sec("BM_FleetRoundOverhead/0")
            and items_per_sec("BM_FleetRoundOverhead/1") else None
        ),
    },
    # Differential oracle (PR 8): the same corpus through a pre-booted
    # bare Executor batch vs a full strict-vs-permissive DiffRunner pass
    # (minimization off). The ratio is the per-pass overhead factor —
    # dual execution + per-call trace comparison + booting both model
    # pairs, which dominates at the benchmark's corpus size.
    "differential": {
        "bare_programs_per_sec": items_per_sec("BM_DiffRunnerOverhead/0"),
        "diff_programs_per_sec": items_per_sec("BM_DiffRunnerOverhead/1"),
        "diff_over_bare_ratio": (
            round(items_per_sec("BM_DiffRunnerOverhead/0") /
                  items_per_sec("BM_DiffRunnerOverhead/1"), 2)
            if items_per_sec("BM_DiffRunnerOverhead/0")
            and items_per_sec("BM_DiffRunnerOverhead/1") else None
        ),
    },
    # Between-campaign corpus distillation (PR 3): dedup + batched replay
    # + greedy cover + crash minimization, per merged-corpus program.
    "distill": {
        "corpus_programs_per_sec": items_per_sec("BM_Distill"),
        "us_per_corpus_program": (
            round(ns_per_item("BM_Distill") / 1000.0, 2)
            if ns_per_item("BM_Distill") else None
        ),
    },
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("wrote %s" % out_path)
PYEOF

python3 -m json.tool "${OUT}" > /dev/null
echo "bench OK: ${OUT}"
