#!/usr/bin/env bash
# Canonical CI check (referenced from CHANGES.md): tier-1 verify plus a
# 4-worker mini-campaign determinism gate on the sharded orchestrator.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== Tier-1 verify: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo
echo "== 4-worker mini-campaign determinism check =="
# Two back-to-back 4-worker sharded campaigns must produce identical
# merged coverage bitmaps and deduplicated crash maps, and a 1-worker
# run must be bit-identical to the serial campaign loop.
./build/orchestrator_test --gtest_filter='OrchestratorTest.MultiWorkerMergeIsDeterministic:OrchestratorTest.OneWorkerBitIdenticalToSerialCampaign'

echo
echo "CI OK"
