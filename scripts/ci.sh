#!/usr/bin/env bash
# Canonical CI check (referenced from CHANGES.md): tier-1 verify plus a
# mini-campaign determinism gate on the sharded orchestrator and the
# corpus distiller.
#
# Env:
#   KERNELGPT_CMAKE_ARGS  extra cmake configure args (compiler, build
#                         type, ccache launcher — used by the CI matrix)
#   BUILD_DIR             build tree (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD_DIR="${BUILD_DIR:-build}"

echo "== Tier-1 verify: configure + build + ctest =="
# shellcheck disable=SC2086  # word-splitting of the extra args is intended
cmake -B "${BUILD_DIR}" -S . ${KERNELGPT_CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j"${JOBS}"
(cd "${BUILD_DIR}" && ctest --output-on-failure --no-tests=error -j"${JOBS}")

echo
echo "== Determinism gate (orchestrator + distiller + service + session + diff) =="
# Two back-to-back sharded campaigns must produce identical merged
# coverage bitmaps and deduplicated crash maps, a 1-worker run must be
# bit-identical to the serial campaign loop, distilling the same merged
# corpus twice must yield byte-identical corpora and reproducers, the
# spec-generation service must emit byte-identical specs at 1 and 4
# worker threads (service_test), a Save/Resume'd fuzzing session must
# be bit-identical to an uninterrupted run of the same rounds
# (session_test), torn-tail / mid-save-crash recovery of the
# incremental journal must restore the last committed round exactly
# (snapshot_test), and a fleet supervisor must produce byte-identical
# reports and tenant states at 1 and 4 supervisor threads (fleet_test),
# and the differential oracle must render byte-identical divergence
# reports at 1 and 4 DiffRunner workers and across session save/resume
# (diff_test). Rerun through ctest so the gate stays in sync with the
# suites instead of a hand-picked gtest filter.
(cd "${BUILD_DIR}" && ctest --output-on-failure --no-tests=error -j"${JOBS}" \
    -R '^(orchestrator_test|distiller_test|service_test|session_test|snapshot_test|fleet_test|diff_test|vnet_test)$')

echo
echo "== Fleet-recovery soak (armed fault plan) =="
# The whole fleet_test suite again with a hostile environment plan: a
# burst of worker exceptions plus one ENOSPC on the first journal
# append. fleet_test's env-soak case arms $KERNELGPT_FAULT_PLAN through
# Fleet::Run's own env path and still requires bit-identical convergence
# with the fault-free baseline; the remaining cases prove the injector's
# spec-armed plans win over the env (their counters are scoped). Bounded
# nth/times windows — never p= — keep the gate deterministic.
(cd "${BUILD_DIR}" && \
    KERNELGPT_FAULT_PLAN='seed=7;site=orchestrator.worker,kind=throw,nth=1,times=2;site=fileio.append,kind=errno,errno=ENOSPC,nth=1,times=1' \
    ./fleet_test --gtest_filter='FleetTest.EnvPlanSoakConvergesToTheFaultFreeResult')

echo
echo "CI OK"
