# Empty dependencies file for bench_table_audit_correctness.
# This may be replaced when dependencies are built.
