file(REMOVE_RECURSE
  "CMakeFiles/bench_table_audit_correctness.dir/bench/table_audit_correctness.cc.o"
  "CMakeFiles/bench_table_audit_correctness.dir/bench/table_audit_correctness.cc.o.d"
  "bench/bench_table_audit_correctness"
  "bench/bench_table_audit_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_audit_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
