file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_sockets.dir/bench/table6_sockets.cc.o"
  "CMakeFiles/bench_table6_sockets.dir/bench/table6_sockets.cc.o.d"
  "bench/bench_table6_sockets"
  "bench/bench_table6_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
