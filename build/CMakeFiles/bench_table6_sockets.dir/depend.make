# Empty dependencies file for bench_table6_sockets.
# This may be replaced when dependencies are built.
