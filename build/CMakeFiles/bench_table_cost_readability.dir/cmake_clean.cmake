file(REMOVE_RECURSE
  "CMakeFiles/bench_table_cost_readability.dir/bench/table_cost_readability.cc.o"
  "CMakeFiles/bench_table_cost_readability.dir/bench/table_cost_readability.cc.o.d"
  "bench/bench_table_cost_readability"
  "bench/bench_table_cost_readability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_cost_readability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
