# Empty dependencies file for bench_table_cost_readability.
# This may be replaced when dependencies are built.
