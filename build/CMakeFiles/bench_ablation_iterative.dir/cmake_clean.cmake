file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iterative.dir/bench/ablation_iterative.cc.o"
  "CMakeFiles/bench_ablation_iterative.dir/bench/ablation_iterative.cc.o.d"
  "bench/bench_ablation_iterative"
  "bench/bench_ablation_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
