# Empty dependencies file for bench_ablation_iterative.
# This may be replaced when dependencies are built.
