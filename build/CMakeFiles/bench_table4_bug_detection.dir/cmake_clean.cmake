file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bug_detection.dir/bench/table4_bug_detection.cc.o"
  "CMakeFiles/bench_table4_bug_detection.dir/bench/table4_bug_detection.cc.o.d"
  "bench/bench_table4_bug_detection"
  "bench/bench_table4_bug_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bug_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
