# Empty dependencies file for bench_table4_bug_detection.
# This may be replaced when dependencies are built.
