file(REMOVE_RECURSE
  "CMakeFiles/example_device_mapper_case_study.dir/examples/device_mapper_case_study.cpp.o"
  "CMakeFiles/example_device_mapper_case_study.dir/examples/device_mapper_case_study.cpp.o.d"
  "examples/example_device_mapper_case_study"
  "examples/example_device_mapper_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_device_mapper_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
