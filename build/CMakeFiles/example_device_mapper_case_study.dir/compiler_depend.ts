# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_device_mapper_case_study.
