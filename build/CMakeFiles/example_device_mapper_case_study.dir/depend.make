# Empty dependencies file for example_device_mapper_case_study.
# This may be replaced when dependencies are built.
