# Empty dependencies file for bench_table3_overall_fuzzing.
# This may be replaced when dependencies are built.
