file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_overall_fuzzing.dir/bench/table3_overall_fuzzing.cc.o"
  "CMakeFiles/bench_table3_overall_fuzzing.dir/bench/table3_overall_fuzzing.cc.o.d"
  "bench/bench_table3_overall_fuzzing"
  "bench/bench_table3_overall_fuzzing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_overall_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
