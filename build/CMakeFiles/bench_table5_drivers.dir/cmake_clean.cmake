file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_drivers.dir/bench/table5_drivers.cc.o"
  "CMakeFiles/bench_table5_drivers.dir/bench/table5_drivers.cc.o.d"
  "bench/bench_table5_drivers"
  "bench/bench_table5_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
