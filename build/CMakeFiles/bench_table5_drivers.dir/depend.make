# Empty dependencies file for bench_table5_drivers.
# This may be replaced when dependencies are built.
