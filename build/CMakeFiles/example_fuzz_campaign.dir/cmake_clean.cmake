file(REMOVE_RECURSE
  "CMakeFiles/example_fuzz_campaign.dir/examples/fuzz_campaign.cpp.o"
  "CMakeFiles/example_fuzz_campaign.dir/examples/fuzz_campaign.cpp.o.d"
  "examples/example_fuzz_campaign"
  "examples/example_fuzz_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fuzz_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
