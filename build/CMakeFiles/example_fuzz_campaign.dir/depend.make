# Empty dependencies file for example_fuzz_campaign.
# This may be replaced when dependencies are built.
