# Empty dependencies file for bench_table2_new_specs.
# This may be replaced when dependencies are built.
