file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_new_specs.dir/bench/table2_new_specs.cc.o"
  "CMakeFiles/bench_table2_new_specs.dir/bench/table2_new_specs.cc.o.d"
  "bench/bench_table2_new_specs"
  "bench/bench_table2_new_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_new_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
