# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_spec_repair_demo.
