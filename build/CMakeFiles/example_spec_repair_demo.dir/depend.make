# Empty dependencies file for example_spec_repair_demo.
# This may be replaced when dependencies are built.
