file(REMOVE_RECURSE
  "CMakeFiles/example_spec_repair_demo.dir/examples/spec_repair_demo.cpp.o"
  "CMakeFiles/example_spec_repair_demo.dir/examples/spec_repair_demo.cpp.o.d"
  "examples/example_spec_repair_demo"
  "examples/example_spec_repair_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spec_repair_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
