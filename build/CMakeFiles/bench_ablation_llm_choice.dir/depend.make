# Empty dependencies file for bench_ablation_llm_choice.
# This may be replaced when dependencies are built.
