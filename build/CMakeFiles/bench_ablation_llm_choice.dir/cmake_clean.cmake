file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_llm_choice.dir/bench/ablation_llm_choice.cc.o"
  "CMakeFiles/bench_ablation_llm_choice.dir/bench/ablation_llm_choice.cc.o.d"
  "bench/bench_ablation_llm_choice"
  "bench/bench_ablation_llm_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_llm_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
