file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_campaign.dir/examples/parallel_campaign.cpp.o"
  "CMakeFiles/example_parallel_campaign.dir/examples/parallel_campaign.cpp.o.d"
  "examples/example_parallel_campaign"
  "examples/example_parallel_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
