# Empty dependencies file for example_parallel_campaign.
# This may be replaced when dependencies are built.
