file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_handlers.dir/bench/table1_handlers.cc.o"
  "CMakeFiles/bench_table1_handlers.dir/bench/table1_handlers.cc.o.d"
  "bench/bench_table1_handlers"
  "bench/bench_table1_handlers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_handlers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
