# Empty dependencies file for bench_table1_handlers.
# This may be replaced when dependencies are built.
