file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_missing_distribution.dir/bench/fig7_missing_distribution.cc.o"
  "CMakeFiles/bench_fig7_missing_distribution.dir/bench/fig7_missing_distribution.cc.o.d"
  "bench/bench_fig7_missing_distribution"
  "bench/bench_fig7_missing_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_missing_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
