# Empty dependencies file for bench_fig7_missing_distribution.
# This may be replaced when dependencies are built.
