# Empty dependencies file for bench_perf_micro.
# This may be replaced when dependencies are built.
