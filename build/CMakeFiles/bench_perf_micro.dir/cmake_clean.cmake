file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_micro.dir/bench/perf_micro.cc.o"
  "CMakeFiles/bench_perf_micro.dir/bench/perf_micro.cc.o.d"
  "bench/bench_perf_micro"
  "bench/bench_perf_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
